"""SQLite spec/provenance index with transactional upserts.

The index is the *only* authority on what a store contains: readers resolve a
content address here first and only then touch the blob directory, so a blob
without an index row is invisible (an orphan for ``gc`` to sweep) and a row
without its blob is a loud :class:`~repro.errors.StoreIntegrityError`, never a
silent miss.

Concurrency model — many writers, many readers, possibly in different
processes:

* the database runs in WAL mode, so readers never block behind a writer;
* every mutation runs inside ``BEGIN IMMEDIATE`` so the write lock is taken
  up front and a transaction either commits whole or leaves nothing;
* ``SQLITE_BUSY``/"database is locked" is retried with exponential backoff
  (:meth:`StoreIndex._with_retry`); only when every retry is exhausted does
  the caller see a :class:`~repro.errors.StoreError`.

Upserts are idempotent by construction: the primary key is the spec's content
address, ``INSERT … ON CONFLICT DO UPDATE`` keeps the original ``created_ns``,
bumps ``updated_ns`` and the ``writes`` counter, and concurrent upserts of the
same key from any number of processes collapse to exactly one row.

The ``fault_hook`` parameter is a test-only crash seam: when set, it is called
with a stage label at defined points inside the write path (see
:class:`~repro.store.ScenarioStore`), letting crash-recovery tests kill a
writer mid-transaction deterministically.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import StoreError
from repro.obs import metrics as _obs

__all__ = ["SCHEMA_VERSION", "IndexRow", "StoreIndex"]

#: On-disk schema version; a database stamped with a newer version is refused.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scenarios (
    key            TEXT PRIMARY KEY,
    spec_json      TEXT NOT NULL,
    base           TEXT NOT NULL,
    family         TEXT NOT NULL,
    n              INTEGER NOT NULL,
    seed           INTEGER NOT NULL,
    nnz            INTEGER,
    payload_sha256 TEXT,
    payload_bytes  INTEGER,
    kind           TEXT NOT NULL DEFAULT 'scenario',
    extra          TEXT,
    created_ns     INTEGER NOT NULL,
    updated_ns     INTEGER NOT NULL,
    writes         INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS idx_scenarios_family ON scenarios (family);
CREATE INDEX IF NOT EXISTS idx_scenarios_base   ON scenarios (base);
CREATE INDEX IF NOT EXISTS idx_scenarios_kind   ON scenarios (kind);
"""

#: sqlite3 surfaces lock contention as OperationalError with one of these
#: message fragments; anything else is a real error and propagates.
_BUSY_FRAGMENTS = ("database is locked", "database is busy")


@dataclass(frozen=True)
class IndexRow:
    """One indexed artefact: the spec, its provenance, and its payload digest.

    ``payload_sha256`` is ``None`` for spec-only rows (e.g. a fuzz repro whose
    build itself crashes — there is no matrix to store, but the spec and the
    failure provenance are still worth keeping).
    """

    key: str
    spec_json: str
    base: str
    family: str
    n: int
    seed: int
    nnz: int | None
    payload_sha256: str | None
    payload_bytes: int | None
    kind: str
    extra: dict[str, Any] | None
    created_ns: int
    updated_ns: int
    writes: int

    @property
    def has_payload(self) -> bool:
        return self.payload_sha256 is not None

    def spec_dict(self) -> dict[str, Any]:
        return json.loads(self.spec_json)


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    msg = str(exc).lower()
    return any(fragment in msg for fragment in _BUSY_FRAGMENTS)


class StoreIndex:
    """The SQLite half of a :class:`~repro.store.ScenarioStore`.

    One connection per instance, serialised by an :class:`threading.RLock`
    (sqlite3's own cross-process locking handles everything beyond the
    process boundary).  ``retries``/``backoff`` shape the contention policy:
    attempt *k* sleeps ``backoff * 2**k`` seconds before retrying, and the
    default five attempts tolerate roughly half a second of sustained lock
    pressure before giving up.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        retries: int = 5,
        backoff: float = 0.02,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        if retries < 0:
            raise StoreError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise StoreError(f"backoff must be >= 0, got {backoff}")
        self.path = Path(path)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.fault_hook = fault_hook
        self._lock = threading.RLock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A short driver-level busy timeout smooths sub-millisecond lock
        # blips; the explicit retry loop above it handles real contention so
        # that backoff (and the final failure) stays under our control.
        self._conn = sqlite3.connect(
            self.path, timeout=0.05, check_same_thread=False
        )
        self._conn.isolation_level = None  # explicit BEGIN/COMMIT only
        self._conn.row_factory = sqlite3.Row
        self._with_retry("init", self._init_schema)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _init_schema(self) -> None:
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            # executescript() would implicitly COMMIT the open transaction,
            # so the schema runs one statement at a time.
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    self._conn.execute(statement)
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) > SCHEMA_VERSION:
                raise StoreError(
                    f"store index {self.path} has schema_version {row['value']} "
                    f"but this library only understands {SCHEMA_VERSION}"
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._rollback()
            raise

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass  # no transaction active — nothing to roll back

    def _with_retry(self, label: str, fn: Callable[[], Any]) -> Any:
        """Run *fn* under the lock, retrying lock contention with backoff."""
        with self._lock:
            for attempt in range(self.retries + 1):
                try:
                    return fn()
                except sqlite3.OperationalError as exc:
                    self._rollback()
                    if not _is_busy(exc) or attempt == self.retries:
                        if _is_busy(exc):
                            raise StoreError(
                                f"store index {label!r} still locked after "
                                f"{self.retries + 1} attempts: {exc}"
                            ) from exc
                        raise StoreError(f"store index {label!r} failed: {exc}") from exc
                    _obs.counter("store.index.retries").inc()
                    time.sleep(self.backoff * (2**attempt))
                except BaseException:
                    self._rollback()
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def upsert(
        self,
        key: str,
        spec_json: str,
        *,
        base: str,
        family: str,
        n: int,
        seed: int,
        nnz: int | None = None,
        payload_sha256: str | None = None,
        payload_bytes: int | None = None,
        kind: str = "scenario",
        extra: Mapping[str, Any] | None = None,
    ) -> None:
        """Insert or refresh one row, transactionally.

        Re-upserting an existing key keeps ``created_ns``, bumps
        ``updated_ns``/``writes``, and replaces everything else — last writer
        wins, which is safe because a content address determines its payload.
        """
        extra_json = json.dumps(dict(extra), sort_keys=True) if extra else None

        def _txn() -> None:
            now = _obs.wall_ns()
            self._conn.execute("BEGIN IMMEDIATE")
            if self.fault_hook is not None:
                self.fault_hook("index_in_txn")
            self._conn.execute(
                """
                INSERT INTO scenarios (
                    key, spec_json, base, family, n, seed, nnz,
                    payload_sha256, payload_bytes, kind, extra,
                    created_ns, updated_ns, writes
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1)
                ON CONFLICT(key) DO UPDATE SET
                    spec_json      = excluded.spec_json,
                    base           = excluded.base,
                    family         = excluded.family,
                    n              = excluded.n,
                    seed           = excluded.seed,
                    nnz            = excluded.nnz,
                    payload_sha256 = excluded.payload_sha256,
                    payload_bytes  = excluded.payload_bytes,
                    kind           = excluded.kind,
                    extra          = excluded.extra,
                    updated_ns     = excluded.updated_ns,
                    writes         = scenarios.writes + 1
                """,
                (
                    key,
                    spec_json,
                    base,
                    family,
                    int(n),
                    int(seed),
                    None if nnz is None else int(nnz),
                    payload_sha256,
                    None if payload_bytes is None else int(payload_bytes),
                    kind,
                    extra_json,
                    now,
                    now,
                ),
            )
            if self.fault_hook is not None:
                self.fault_hook("index_pre_commit")
            self._conn.execute("COMMIT")

        self._with_retry("upsert", _txn)
        _obs.counter("store.index.upserts").inc()

    def delete(self, key: str) -> bool:
        """Remove one row; returns whether it existed."""

        def _txn() -> bool:
            self._conn.execute("BEGIN IMMEDIATE")
            cur = self._conn.execute("DELETE FROM scenarios WHERE key = ?", (key,))
            self._conn.execute("COMMIT")
            return cur.rowcount > 0

        return bool(self._with_retry("delete", _txn))

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    @staticmethod
    def _row_to_index_row(row: sqlite3.Row) -> IndexRow:
        return IndexRow(
            key=row["key"],
            spec_json=row["spec_json"],
            base=row["base"],
            family=row["family"],
            n=row["n"],
            seed=row["seed"],
            nnz=row["nnz"],
            payload_sha256=row["payload_sha256"],
            payload_bytes=row["payload_bytes"],
            kind=row["kind"],
            extra=json.loads(row["extra"]) if row["extra"] else None,
            created_ns=row["created_ns"],
            updated_ns=row["updated_ns"],
            writes=row["writes"],
        )

    def get(self, key: str) -> IndexRow | None:
        def _query() -> IndexRow | None:
            row = self._conn.execute(
                "SELECT * FROM scenarios WHERE key = ?", (key,)
            ).fetchone()
            return None if row is None else self._row_to_index_row(row)

        return self._with_retry("get", _query)

    def rows(
        self,
        *,
        family: str | None = None,
        base: str | None = None,
        kind: str | None = None,
    ) -> list[IndexRow]:
        """All rows, newest-updated first, optionally filtered."""
        clauses: list[str] = []
        params: list[Any] = []
        for column, value in (("family", family), ("base", base), ("kind", kind)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT * FROM scenarios{where} ORDER BY updated_ns DESC, key"

        def _query() -> list[IndexRow]:
            return [
                self._row_to_index_row(row)
                for row in self._conn.execute(sql, params).fetchall()
            ]

        return self._with_retry("rows", _query)

    def keys(self) -> list[str]:
        def _query() -> list[str]:
            return [
                row["key"]
                for row in self._conn.execute(
                    "SELECT key FROM scenarios ORDER BY key"
                ).fetchall()
            ]

        return self._with_retry("keys", _query)

    def count(self) -> int:
        def _query() -> int:
            return int(
                self._conn.execute("SELECT COUNT(*) AS c FROM scenarios").fetchone()["c"]
            )

        return self._with_retry("count", _query)

    def schema_version(self) -> int:
        def _query() -> int:
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            return int(row["value"]) if row is not None else SCHEMA_VERSION

        return self._with_retry("schema_version", _query)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "StoreIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
