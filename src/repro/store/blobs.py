"""Content-addressed matrix blobs: deterministic framing, atomic writes.

A blob is one built :class:`~repro.core.TrafficMatrix`, serialised to a
self-describing binary frame and written under its spec's content address
(:meth:`ScenarioSpec.cache_key() <repro.scenarios.ScenarioSpec.cache_key>`).
Two guarantees carry the whole durable tier:

* **Deterministic encoding.**  The same matrix always produces the same
  bytes: a canonical JSON header (sorted keys, no whitespace) followed by the
  raw C-order packet and colour grids.  Because a spec fully determines its
  matrix, concurrent writers of one key produce *identical* files — which is
  what makes last-rename-wins a safe conflict rule.
* **Integrity on read.**  Every frame ends with the SHA-256 of everything
  before it; :func:`decode_matrix` recomputes and compares before touching a
  byte of payload, and raises :class:`~repro.errors.StoreIntegrityError` on
  any mismatch.  A store never serves bytes it cannot vouch for.

Writes are crash-safe by construction: the frame lands in a staging file
inside the store (same filesystem), is fsynced, and is then atomically
renamed onto its final path; the containing directory is fsynced so the
rename itself is durable.  A writer killed at any point leaves either the
old blob, a staging file no reader ever looks at, or the complete new blob —
never a torn frame under the live name.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import struct
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import StoreError, StoreIntegrityError
from repro.obs import metrics as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix

__all__ = [
    "BLOB_MAGIC",
    "BLOB_FORMAT_VERSION",
    "encode_matrix",
    "decode_matrix",
    "blob_digest",
    "BlobStore",
]

#: Frame magic — 8 bytes, versioned separately from the header field below so
#: a truncated or foreign file is rejected before any parsing happens.
BLOB_MAGIC = b"RPROBLOB"

#: Version stamp written into every frame header.
BLOB_FORMAT_VERSION = 1

_LEN = struct.Struct("<Q")
_DIGEST_SIZE = hashlib.sha256().digest_size

#: Monotone staging-file counter: unique within a process without drawing
#: randomness (pid disambiguates across processes).
_STAGING_IDS = itertools.count()


def encode_matrix(matrix: "TrafficMatrix") -> bytes:
    """Serialise one matrix to its canonical blob frame.

    The frame is ``magic | header_len | header_json | packets | colors |
    sha256``.  Encoding is deterministic — equal matrices (metadata included)
    produce equal bytes — so the blob digest doubles as a content check
    across independent writers.
    """
    packets = np.ascontiguousarray(matrix.packets)
    colors = np.ascontiguousarray(matrix.colors)
    header = {
        "format_version": BLOB_FORMAT_VERSION,
        "n": matrix.n,
        "labels": list(matrix.labels),
        "extended_colors": matrix.extended_colors,
        "meta": matrix.meta,
        "packets_dtype": packets.dtype.str,
        "colors_dtype": colors.dtype.str,
    }
    try:
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except TypeError as exc:
        raise StoreError(
            f"matrix metadata holds non-JSON values and cannot be stored: {exc}"
        ) from None
    body = b"".join(
        (
            BLOB_MAGIC,
            _LEN.pack(len(header_bytes)),
            header_bytes,
            packets.tobytes(order="C"),
            colors.tobytes(order="C"),
        )
    )
    return body + hashlib.sha256(body).digest()


def blob_digest(data: bytes) -> str:
    """SHA-256 hex of a whole blob frame — what the index records per row."""
    return hashlib.sha256(data).hexdigest()


def decode_matrix(data: bytes) -> "TrafficMatrix":
    """Rebuild a matrix from its blob frame, verifying integrity first.

    Raises :class:`~repro.errors.StoreIntegrityError` when the frame is
    truncated, foreign, or fails its checksum, and
    :class:`~repro.errors.StoreError` for a well-formed frame of an
    unsupported version.
    """
    from repro.core.traffic_matrix import TrafficMatrix

    if len(data) < len(BLOB_MAGIC) + _LEN.size + _DIGEST_SIZE:
        raise StoreIntegrityError(
            f"blob frame is truncated ({len(data)} bytes)"
        )
    if not data.startswith(BLOB_MAGIC):
        raise StoreIntegrityError("blob frame does not start with the blob magic")
    body, trailer = data[:-_DIGEST_SIZE], data[-_DIGEST_SIZE:]
    if hashlib.sha256(body).digest() != trailer:
        raise StoreIntegrityError(
            "blob checksum mismatch: stored digest does not match content"
        )
    offset = len(BLOB_MAGIC)
    (header_len,) = _LEN.unpack_from(body, offset)
    offset += _LEN.size
    if offset + header_len > len(body):
        raise StoreIntegrityError("blob header length exceeds the frame")
    try:
        header = json.loads(body[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreIntegrityError(f"blob header is not valid JSON: {exc}") from None
    offset += header_len
    version = header.get("format_version")
    if version != BLOB_FORMAT_VERSION:
        raise StoreError(
            f"unsupported blob format_version {version!r} "
            f"(this library reads {BLOB_FORMAT_VERSION})"
        )
    n = int(header["n"])
    packets_dtype = np.dtype(header["packets_dtype"])
    colors_dtype = np.dtype(header["colors_dtype"])
    packets_bytes = n * n * packets_dtype.itemsize
    colors_bytes = n * n * colors_dtype.itemsize
    if offset + packets_bytes + colors_bytes != len(body):
        raise StoreIntegrityError(
            f"blob payload size mismatch: header promises "
            f"{packets_bytes + colors_bytes} grid bytes, frame holds "
            f"{len(body) - offset}"
        )
    packets = np.frombuffer(
        body, dtype=packets_dtype, count=n * n, offset=offset
    ).reshape(n, n)
    colors = np.frombuffer(
        body, dtype=colors_dtype, count=n * n, offset=offset + packets_bytes
    ).reshape(n, n)
    return TrafficMatrix(
        packets,
        header["labels"],
        colors,
        extended_colors=bool(header["extended_colors"]),
        meta=header.get("meta") or None,
    )


class BlobStore:
    """Flat content-addressed blob files under ``root`` (two-level fan-out).

    ``root/ab/<key>.blob`` holds the frame for content address ``ab…``; the
    fan-out keeps directory listings sane at millions of entries.  Staging
    files live in ``root/staging/`` on the same filesystem, so the final
    rename is atomic.  ``fsync=False`` trades durability for speed — right
    for tests and throwaway corpora, wrong for anything shared.
    """

    def __init__(self, root: Path | str, *, fsync: bool = True) -> None:
        self.root = Path(root)
        self.fsync = bool(fsync)
        self._staging = self.root / "staging"
        self._staging.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_key(key: str) -> str:
        if not isinstance(key, str) or len(key) < 3 or not all(
            c in "0123456789abcdef" for c in key
        ):
            raise StoreError(
                f"blob keys are lowercase hex content addresses, got {key!r}"
            )
        return key

    def path_for(self, key: str) -> Path:
        """The final on-disk path for one content address."""
        key = self._check_key(key)
        return self.root / key[:2] / f"{key}.blob"

    # ------------------------------------------------------------------ #
    # io
    # ------------------------------------------------------------------ #

    def _fsync_dir(self, path: Path) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
            _obs.counter("store.fsyncs").inc()
        finally:
            os.close(fd)

    def write(self, key: str, data: bytes) -> Path:
        """Atomically publish *data* under *key*; returns the final path.

        Stage → fsync → rename → fsync(dir).  Concurrent writers of the same
        key race only at the rename, and since equal keys imply equal bytes
        (deterministic encoding of a content-determined matrix), whichever
        rename lands last changes nothing.
        """
        final = self.path_for(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        staged = self._staging / f"{key}.{os.getpid()}.{next(_STAGING_IDS)}.tmp"
        fd = os.open(staged, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
                    _obs.counter("store.fsyncs").inc()
            os.replace(staged, final)
            if self.fsync:
                self._fsync_dir(final.parent)
        except BaseException:
            # best-effort staging cleanup; a leftover staging file is inert
            # (no reader looks at it) and gc() sweeps it anyway
            try:
                staged.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        _obs.counter("store.blob_writes").inc()
        _obs.counter("store.bytes_written").inc(len(data))
        return final

    def read(self, key: str) -> bytes:
        """The raw frame for *key*; raises :class:`StoreIntegrityError` if absent."""
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise StoreIntegrityError(
                f"blob for key {key[:12]}… is missing from {path.parent}"
            ) from None
        _obs.counter("store.bytes_read").inc(len(data))
        return data

    def exists(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        """Remove one blob; returns whether a file was actually deleted."""
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def size_of(self, key: str) -> int | None:
        try:
            return self.path_for(key).stat().st_size
        except FileNotFoundError:
            return None

    def keys(self) -> Iterator[str]:
        """Every content address with a published blob, in sorted order."""
        if not self.root.exists():
            return
        for shard in sorted(p for p in self.root.iterdir() if p.is_dir()):
            if shard.name == "staging":
                continue
            for blob in sorted(shard.glob("*.blob")):
                yield blob.stem

    def staging_files(self) -> list[Path]:
        """Leftover staging files (crashed writers); gc() removes them."""
        return sorted(self._staging.glob("*.tmp"))
