"""The durable scenario store: content-addressed blobs + transactional index.

:class:`ScenarioStore` composes the two halves of :mod:`repro.store` into the
persistence tier the rest of the library talks to.  One directory holds
everything::

    root/
        index.sqlite          spec/provenance index (WAL mode)
        ab/<key>.blob         matrix blobs, two-level hex fan-out
        staging/              in-flight writes, invisible to readers

**Crash-safe write ordering.**  :meth:`ScenarioStore.put` writes the blob
first (atomic staged rename) and commits the index row second.  A writer
killed at any point therefore leaves one of exactly three states, all safe:

1. nothing published (died in staging) — the store is unchanged;
2. blob published, no index row — the blob is an invisible *orphan* (reads
   resolve through the index only) that :meth:`gc` reclaims;
3. blob and row both published — the write simply succeeded.

A *dangling* row — an index entry whose blob is missing — cannot be produced
by a crash, only by outside interference with the blob directory; reads
surface it as a :class:`~repro.errors.StoreIntegrityError` and
:meth:`verify`/:meth:`gc` report it.

**Bit-identity.**  The store round trip is part of the library's determinism
contract: ``store.get(spec)`` after ``store.put(spec, spec.build())`` returns
a matrix equal to a fresh ``spec.build()`` — packets, colours, labels, *and*
provenance metadata — in this process or any later one.  The
``store_round_trip`` oracle in :mod:`repro.verify` enforces this over the
fuzz corpus.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import StoreError, StoreIntegrityError
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.store.blobs import BlobStore, blob_digest, decode_matrix, encode_matrix
from repro.store.index import IndexRow, StoreIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioStore"]


def _family_of(base: str) -> str:
    from repro.errors import ScenarioError
    from repro.scenarios.registry import get_generator

    try:
        return get_generator(base).family
    except ScenarioError:
        return "unknown"


class ScenarioStore:
    """Durable content-addressed store for built scenarios and repros.

    Parameters
    ----------
    root:
        Store directory; created if absent.  Everything the store owns lives
        under it, so a store is moved or deleted by moving or deleting one
        directory.
    fsync:
        Fsync blobs and their directory on write (default).  Disable for
        tests and throwaway corpora where speed beats durability.
    retries / backoff:
        Lock-contention policy for the SQLite index; see
        :class:`~repro.store.index.StoreIndex`.
    fault_hook:
        Test-only crash seam.  When set, it is called with a stage label at
        defined points in the write path — ``"blob_written"`` between the
        blob rename and the index transaction, plus the index's own
        ``"index_in_txn"`` / ``"index_pre_commit"`` stages — so tests can
        kill a writer at any boundary and assert recovery.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        fsync: bool = True,
        retries: int = 5,
        backoff: float = 0.02,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.fault_hook = fault_hook
        self.blobs = BlobStore(self.root, fsync=fsync)
        self.index = StoreIndex(
            self.root / "index.sqlite",
            retries=retries,
            backoff=backoff,
            fault_hook=fault_hook,
        )

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    @staticmethod
    def key_of(spec: "ScenarioSpec | str") -> str:
        """The content address for a spec (or pass a key through unchanged)."""
        if isinstance(spec, str):
            return spec
        return spec.cache_key()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def put(
        self,
        spec: "ScenarioSpec",
        matrix: "TrafficMatrix",
        *,
        kind: str = "scenario",
        extra: Mapping[str, Any] | None = None,
    ) -> str:
        """Durably store one built matrix under its spec's content address.

        Blob first, index row second — see the module docstring for why this
        ordering makes a mid-write crash harmless.  Returns the key.
        """
        key = spec.cache_key()
        with _trace.get_tracer().span("store.put", key=key[:12], tier="l2"):
            frame = encode_matrix(matrix)
            digest = blob_digest(frame)
            self.blobs.write(key, frame)
            if self.fault_hook is not None:
                self.fault_hook("blob_written")
            self.index.upsert(
                key,
                spec.canonical_json(),
                base=spec.base,
                family=_family_of(spec.base),
                n=spec.n,
                seed=spec.seed,
                nnz=matrix.nnz(),
                payload_sha256=digest,
                payload_bytes=len(frame),
                kind=kind,
                extra=extra,
            )
        _obs.counter("store.puts").inc()
        return key

    def put_spec(
        self,
        spec: "ScenarioSpec",
        *,
        kind: str = "scenario",
        extra: Mapping[str, Any] | None = None,
    ) -> str:
        """Index a spec without a payload (e.g. a repro whose build crashes)."""
        key = spec.cache_key()
        self.index.upsert(
            key,
            spec.canonical_json(),
            base=spec.base,
            family=_family_of(spec.base),
            n=spec.n,
            seed=spec.seed,
            kind=kind,
            extra=extra,
        )
        _obs.counter("store.spec_puts").inc()
        return key

    def delete(self, spec_or_key: "ScenarioSpec | str") -> bool:
        """Remove an artefact (row first, then blob); returns whether it existed.

        The reverse of the write ordering for the same reason: between the
        two steps the blob is merely an orphan, never a dangling row.
        """
        key = self.key_of(spec_or_key)
        existed = self.index.delete(key)
        self.blobs.delete(key)
        return existed

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, spec_or_key: "ScenarioSpec | str") -> "TrafficMatrix | None":
        """Load a stored matrix, or ``None`` on a clean miss.

        Integrity is checked twice: the blob's embedded checksum, and the
        decoded frame's digest against what the index recorded at write time.
        Any disagreement raises :class:`~repro.errors.StoreIntegrityError`
        rather than returning questionable data.
        """
        key = self.key_of(spec_or_key)
        with _trace.get_tracer().span("store.get", key=key[:12], tier="l2"):
            row = self.index.get(key)
            if row is None or row.payload_sha256 is None:
                _obs.counter("store.misses").inc()
                return None
            frame = self.blobs.read(key)  # raises if the blob vanished
            if blob_digest(frame) != row.payload_sha256:
                raise StoreIntegrityError(
                    f"blob for key {key[:12]}… does not match the digest the "
                    f"index recorded at write time"
                )
            matrix = decode_matrix(frame)
        _obs.counter("store.hits").inc()
        return matrix

    def contains(self, spec_or_key: "ScenarioSpec | str") -> bool:
        """Whether a payload-bearing row exists (no blob read, no counters)."""
        row = self.index.get(self.key_of(spec_or_key))
        return row is not None and row.payload_sha256 is not None

    __contains__ = contains

    def entry(self, spec_or_key: "ScenarioSpec | str") -> IndexRow | None:
        """The index row for one artefact, payload-bearing or not."""
        return self.index.get(self.key_of(spec_or_key))

    def entries(
        self,
        *,
        family: str | None = None,
        base: str | None = None,
        kind: str | None = None,
    ) -> list[IndexRow]:
        """Indexed artefacts, newest first, optionally filtered."""
        return self.index.rows(family=family, base=base, kind=kind)

    def spec_for(self, key: str) -> "ScenarioSpec":
        """Rehydrate the spec a key was derived from (from the index row)."""
        from repro.scenarios.spec import ScenarioSpec

        row = self.index.get(key)
        if row is None:
            raise StoreError(f"store has no entry for key {key[:12]}…")
        return ScenarioSpec.from_json(row.spec_json)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def gc(self, *, dry_run: bool = False) -> dict[str, list[str]]:
        """Sweep debris: orphan blobs, stale staging files, dangling rows.

        Orphan blobs (no index row) and staging leftovers are deleted;
        dangling rows (index row whose blob is missing) are *reported* but
        kept — the spec and provenance are still real, and deleting evidence
        of outside interference silently is the wrong default.  With
        ``dry_run`` nothing is touched.  Returns what was (or would be)
        acted on.
        """
        indexed = set(self.index.keys())
        on_disk = set(self.blobs.keys())
        orphans = sorted(on_disk - indexed)
        dangling = sorted(
            row.key
            for row in self.index.rows()
            if row.payload_sha256 is not None and row.key not in on_disk
        )
        staging = self.blobs.staging_files()
        if not dry_run:
            for key in orphans:
                self.blobs.delete(key)
            for path in staging:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            _obs.counter("store.gc_orphans").inc(len(orphans))
        return {
            "orphan_blobs": orphans,
            "dangling_rows": dangling,
            "staging_files": [str(p) for p in staging],
        }

    def verify(self, *, rebuild: bool = False) -> dict[str, list[str]]:
        """Check every artefact; returns problems keyed by failure class.

        Always checks blob presence, checksum, and index-digest agreement.
        With ``rebuild`` it also rebuilds each scenario from its spec and
        compares bit-for-bit — the full determinism contract, at full cost.
        """
        problems: dict[str, list[str]] = {
            "missing_blob": [],
            "corrupt_blob": [],
            "digest_mismatch": [],
            "rebuild_mismatch": [],
        }
        for row in self.index.rows():
            if row.payload_sha256 is None:
                continue
            try:
                frame = self.blobs.read(row.key)
            except StoreIntegrityError:
                problems["missing_blob"].append(row.key)
                continue
            if blob_digest(frame) != row.payload_sha256:
                problems["digest_mismatch"].append(row.key)
                continue
            try:
                matrix = decode_matrix(frame)
            except StoreError:
                problems["corrupt_blob"].append(row.key)
                continue
            if rebuild:
                from repro.scenarios.spec import ScenarioSpec

                spec = ScenarioSpec.from_json(row.spec_json)
                rebuilt = spec.build()
                if rebuilt != matrix or rebuilt.meta != matrix.meta:
                    problems["rebuild_mismatch"].append(row.key)
        return problems

    def stats(self) -> dict[str, Any]:
        """Shape and size of the store, cheap enough to call from hot paths."""
        rows = self.index.rows()
        by_kind: dict[str, int] = {}
        payload_bytes = 0
        for row in rows:
            by_kind[row.kind] = by_kind.get(row.kind, 0) + 1
            payload_bytes += row.payload_bytes or 0
        return {
            "root": str(self.root),
            "schema_version": self.index.schema_version(),
            "entries": len(rows),
            "by_kind": dict(sorted(by_kind.items())),
            "payload_bytes": payload_bytes,
            "blobs_on_disk": sum(1 for _ in self.blobs.keys()),
            "staging_files": len(self.blobs.staging_files()),
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        self.index.close()

    def __enter__(self) -> "ScenarioStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ScenarioStore(root={str(self.root)!r}, entries={self.index.count()})"
