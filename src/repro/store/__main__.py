"""``python -m repro.store`` — administer a durable scenario store.

Subcommands (all take ``--root DIR``):

* ``ls`` — list indexed artefacts (key, kind, family, n, seed, bytes);
  filter with ``--kind``/``--family``/``--base``.
* ``stats`` — print the store's shape and size as JSON.
* ``gc`` — sweep orphan blobs and stale staging files; ``--dry-run`` only
  reports.  Dangling index rows are reported, never deleted.
* ``verify`` — integrity-check every artefact; ``--rebuild`` additionally
  rebuilds each scenario from its spec and compares bit-for-bit.  Exits 1
  when problems are found.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.errors import StoreError
from repro.store import ScenarioStore


def _open(args: argparse.Namespace) -> ScenarioStore:
    if not os.path.isdir(args.root):
        raise StoreError(f"store root {args.root!r} does not exist")
    return ScenarioStore(args.root)


def _cmd_ls(args: argparse.Namespace) -> int:
    with _open(args) as store:
        rows = store.entries(kind=args.kind, family=args.family, base=args.base)
        for row in rows:
            size = "-" if row.payload_bytes is None else str(row.payload_bytes)
            print(
                f"{row.key[:16]}  {row.kind:<10} {row.family:<10} "
                f"n={row.n:<5} seed={row.seed:<12} bytes={size}"
            )
        print(f"{len(rows)} entries")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open(args) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    with _open(args) as store:
        report = store.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {len(report['orphan_blobs'])} orphan blob(s)")
        print(f"{verb} {len(report['staging_files'])} staging file(s)")
        if report["dangling_rows"]:
            print(
                f"warning: {len(report['dangling_rows'])} dangling index row(s) "
                f"(blob missing) — kept; inspect with `verify`",
                file=sys.stderr,
            )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    with _open(args) as store:
        problems = store.verify(rebuild=args.rebuild)
        total = sum(len(keys) for keys in problems.values())
        for reason, keys in sorted(problems.items()):
            for key in keys:
                print(f"{reason}: {key}")
        checked = store.index.count()
        print(f"checked {checked} entries, {total} problem(s)")
    return 1 if total else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Administer a durable content-addressed scenario store.",
    )
    parser.add_argument("--root", required=True, help="store directory")
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="list indexed artefacts")
    p_ls.add_argument("--kind", default=None, help="filter by kind (scenario, repro)")
    p_ls.add_argument("--family", default=None, help="filter by generator family")
    p_ls.add_argument("--base", default=None, help="filter by base generator name")
    p_ls.set_defaults(func=_cmd_ls)

    p_stats = sub.add_parser("stats", help="print store shape and size as JSON")
    p_stats.set_defaults(func=_cmd_stats)

    p_gc = sub.add_parser("gc", help="sweep orphan blobs and staging debris")
    p_gc.add_argument("--dry-run", action="store_true", help="report, don't delete")
    p_gc.set_defaults(func=_cmd_gc)

    p_verify = sub.add_parser("verify", help="integrity-check every artefact")
    p_verify.add_argument(
        "--rebuild",
        action="store_true",
        help="also rebuild each scenario from its spec and compare bit-for-bit",
    )
    p_verify.set_defaults(func=_cmd_verify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream pager/head closed the pipe mid-print; exit quietly
        # (devnull swap stops the interpreter re-raising at shutdown)
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
