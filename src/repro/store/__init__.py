"""repro.store — durable content-addressed scenario store.

The persistence tier under :mod:`repro.scenarios`: built matrices live in
content-addressed blob files (atomic write-rename, checksummed on read) and
a SQLite WAL index carries each spec, its provenance, and its payload digest
with transactional upsert semantics.  Plug a :class:`ScenarioStore` into
:class:`~repro.scenarios.ScenarioCache` (or :class:`ScenarioService`,
:func:`generate_batch`, :func:`scenario_stream`) and corpora survive
restarts and are shared across processes, bit-identically.

``python -m repro.store --root DIR {ls,gc,verify,stats}`` administers a
store from the shell.
"""

from repro.store.blobs import (
    BLOB_FORMAT_VERSION,
    BLOB_MAGIC,
    BlobStore,
    blob_digest,
    decode_matrix,
    encode_matrix,
)
from repro.store.index import SCHEMA_VERSION, IndexRow, StoreIndex
from repro.store.store import ScenarioStore

__all__ = [
    "BLOB_FORMAT_VERSION",
    "BLOB_MAGIC",
    "BlobStore",
    "IndexRow",
    "SCHEMA_VERSION",
    "ScenarioStore",
    "StoreIndex",
    "blob_digest",
    "decode_matrix",
    "encode_matrix",
]
