"""R4 (lint half) — expression-construction site checks (``SHP``).

:func:`repro.staticcheck.shapes.infer` types a *live* tree; this rule covers
what can be said about expression code *as text*.  The builder methods
(``A.mxm(B)``, ``.ewise``, ``union_all``) validate shapes at construction,
so the dangerous sites are the ones that sidestep them:

* ``SHP001`` — a raw expression node constructor (``MxM(a, b, sr)``,
  ``UnionAll(...)``, …) called outside :mod:`repro.assoc` itself: raw
  constructors skip shape validation entirely, so the site must run
  ``Plan.typecheck()`` (or ``shapes.infer``) before evaluating — the lint
  makes such sites visible and suppressable one by one;
* ``SHP002`` — ``union_all([])`` / ``UnionAll(())`` with a literal empty
  operand list: unconditionally raises at evaluation;
* ``SHP003`` — a deferred-expression builder called as a bare expression
  statement: the node is constructed, never evaluated, and silently
  discarded (almost always a forgotten ``.new()`` / ``<<``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.core import FileContext, Finding, dotted_name

__all__ = ["ExprSiteRule", "RAW_NODE_CONSTRUCTORS", "DEFERRED_BUILDERS"]

#: Expression node classes whose constructors perform no shape validation.
RAW_NODE_CONSTRUCTORS = frozenset(
    {"MxM", "EWiseMult", "UnionAll", "TransposeExpr", "MxV", "ReduceRows"}
)

#: Builder methods that return a deferred expression (no side effects).
DEFERRED_BUILDERS = frozenset(
    {"mxm", "ewise", "mxv", "reduce_rows", "reduce_cols", "transpose"}
)

#: Module prefix where raw constructors are the implementation, not a smell.
_ASSOC_PREFIX = "repro.assoc"


def _is_empty_literal(node: ast.expr) -> bool:
    return isinstance(node, (ast.List, ast.Tuple, ast.Set)) and not node.elts


class ExprSiteRule:
    """SHP — raw constructors, empty unions, and discarded expressions."""

    name = "expr-sites"
    codes = {
        "SHP001": "raw expression node constructor bypasses shape validation",
        "SHP002": "union over a literal empty operand list always raises",
        "SHP003": "deferred expression built and discarded (missing .new()/<<)",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_assoc = ctx.module is not None and (
            ctx.module == _ASSOC_PREFIX or ctx.module.startswith(_ASSOC_PREFIX + ".")
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, in_assoc)
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                yield from self._check_bare_statement(ctx, node.value)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, in_assoc: bool
    ) -> Iterator[Finding]:
        target = ctx.imports.resolve(node.func) or dotted_name(node.func)
        tail = target.rpartition(".")[2] if target else None

        if tail in RAW_NODE_CONSTRUCTORS and not in_assoc:
            resolved = ctx.imports.resolve(node.func) or ""
            if resolved.startswith("repro.assoc") or tail == resolved:
                yield ctx.finding(
                    "SHP001",
                    node,
                    f"raw {tail}(...) skips the builder's shape validation; "
                    f"prefer the builder method, or typecheck the tree with "
                    f"staticcheck.shapes.infer before evaluating",
                )

        if tail in {"union_all", "UnionAll"} and node.args:
            if _is_empty_literal(node.args[0]):
                yield ctx.finding(
                    "SHP002",
                    node,
                    f"{tail}() over a literal empty operand list raises "
                    f"ExpressionError at evaluation; guard the empty case",
                )

    def _check_bare_statement(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr not in DEFERRED_BUILDERS:
            return
        yield ctx.finding(
            "SHP003",
            call,
            f".{call.func.attr}(...) builds a deferred expression with no side "
            f"effects; as a bare statement the result is discarded — evaluate "
            f"it with .new() or assign it",
        )
