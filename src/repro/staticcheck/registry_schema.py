"""R3 — registry-schema conformance (``REG``).

``@register_scenario`` declares a generator's public contract — family,
size floor, numeric parameter bounds — and ``_introspect_params`` marries it
to the function signature *at import time*.  Some drift is caught there
(bounds naming a parameter that does not exist raises), but most is not: a
default outside its own declared bounds, a positional parameter the spec
path will never be able to address, a count parameter with no bounds for the
fuzzer to sample.  Those only surface when the fuzzer happens to draw the
right spec.  This rule cross-checks decorator against signature statically,
without importing the generator modules (so it runs without NumPy).

Codes:

* ``REG001`` — ``bounds`` names a parameter absent from the signature;
* ``REG002`` — a literal default falls outside its own declared bounds;
* ``REG003`` — a parameter besides the leading size parameter is
  positional-or-keyword: the spec path passes params by keyword only, so
  everything after ``n`` must sit behind a ``*``;
* ``REG004`` — a parameter besides the leading size parameter is required
  (no default): ``ScenarioSpec`` treats params as optional overrides;
* ``REG005`` — a recognisably numeric count/rate/density parameter declares
  no bounds, leaving the fuzzer's sampler unanchored;
* ``REG006`` — the ``family`` literal is not one of the known families.

Only literal decorator arguments are inspected; computed families or bounds
are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.core import FileContext, Finding, dotted_name

__all__ = ["RegistrySchemaRule", "KNOWN_FAMILIES", "BOUNDED_PARAM_NAMES"]

#: Mirror of ``repro.scenarios.registry.SCENARIO_FAMILIES`` — hardcoded so the
#: checker never imports the scenario layer (kept in sync by a test).
KNOWN_FAMILIES = ("pattern", "topology", "attack", "defense", "ddos", "noise")

#: Parameter names that are numeric knobs by convention and must carry bounds.
BOUNDED_PARAM_NAMES = frozenset(
    {
        "packets",
        "attack_packets",
        "max_packets",
        "density",
        "branching",
        "rate",
        "intensity",
        "count",
        "fraction",
        "probability",
        "scale",
    }
)


def _const(node: ast.expr) -> object:
    """The literal value of a Constant node, else the node itself."""
    return node.value if isinstance(node, ast.Constant) else node


def _bounds_literal(
    node: ast.expr,
) -> dict[str, tuple[float | None, float | None]] | None:
    """Parse a literal ``bounds={...}`` dict; ``None`` if any part is computed."""
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, tuple[float | None, float | None]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        if not (isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == 2):
            return None
        lo, hi = (_const(e) for e in value.elts)
        if not all(v is None or isinstance(v, (int, float)) for v in (lo, hi)):
            return None
        out[key.value] = (lo, hi)  # type: ignore[assignment]
    return out


class _Param:
    __slots__ = ("name", "keyword_only", "default", "has_default", "node")

    def __init__(
        self,
        name: str,
        *,
        keyword_only: bool,
        default: ast.expr | None,
        node: ast.arg,
    ) -> None:
        self.name = name
        self.keyword_only = keyword_only
        self.default = default
        self.has_default = default is not None
        self.node = node


def _signature_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[_Param]:
    params: list[_Param] = []
    positional = [*fn.args.posonlyargs, *fn.args.args]
    pos_defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(fn.args.defaults)
    ) + list(fn.args.defaults)
    for arg, default in zip(positional, pos_defaults):
        params.append(_Param(arg.arg, keyword_only=False, default=default, node=arg))
    for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        params.append(_Param(arg.arg, keyword_only=True, default=default, node=arg))
    return params


class RegistrySchemaRule:
    """REG — decorator schema vs. signature, checked without importing."""

    name = "registry-schema"
    codes = {
        "REG001": "bounds declared for a parameter the generator does not take",
        "REG002": "literal default lies outside the declared bounds",
        "REG003": "parameter after the size parameter is not keyword-only",
        "REG004": "parameter after the size parameter has no default",
        "REG005": "numeric count/rate parameter declares no bounds",
        "REG006": "unknown scenario family literal",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not isinstance(deco, ast.Call):
                    continue
                target = ctx.imports.resolve(deco.func) or dotted_name(deco.func)
                if target is None or target.rpartition(".")[2] != "register_scenario":
                    continue
                yield from self._check_registration(ctx, node, deco)

    def _check_registration(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        deco: ast.Call,
    ) -> Iterator[Finding]:
        keywords = {kw.arg: kw.value for kw in deco.keywords if kw.arg}
        params = _signature_params(fn)
        param_names = {p.name for p in params}

        family_node = keywords.get("family")
        if isinstance(family_node, ast.Constant) and isinstance(family_node.value, str):
            if family_node.value not in KNOWN_FAMILIES:
                yield ctx.finding(
                    "REG006",
                    family_node,
                    f"family {family_node.value!r} is not one of {KNOWN_FAMILIES}; "
                    f"registration will raise at import time",
                )

        bounds_node = keywords.get("bounds")
        bounds = _bounds_literal(bounds_node) if bounds_node is not None else {}
        if bounds is None:
            bounds = {}
        elif bounds_node is not None and isinstance(bounds_node, ast.Dict):
            for key in bounds:
                if key not in param_names:
                    yield ctx.finding(
                        "REG001",
                        bounds_node,
                        f"bounds declared for {key!r}, but {fn.name}() has no "
                        f"such parameter (takes {sorted(param_names)})",
                    )

        for index, param in enumerate(params):
            if index == 0:
                continue  # the leading size parameter (`n`) is positional by design
            if not param.keyword_only:
                yield ctx.finding(
                    "REG003",
                    param.node,
                    f"parameter {param.name!r} of {fn.name}() is "
                    f"positional-or-keyword; the spec path passes params by "
                    f"keyword — put it after a bare `*`",
                )
            if not param.has_default:
                yield ctx.finding(
                    "REG004",
                    param.node,
                    f"parameter {param.name!r} of {fn.name}() has no default; "
                    f"ScenarioSpec params are optional overrides, so every "
                    f"non-size parameter needs one",
                )
            if param.name in BOUNDED_PARAM_NAMES and param.name not in bounds:
                yield ctx.finding(
                    "REG005",
                    param.node,
                    f"numeric parameter {param.name!r} of {fn.name}() declares "
                    f"no bounds; the fuzzer cannot sample it — add it to the "
                    f"decorator's bounds mapping",
                )
            lo_hi = bounds.get(param.name)
            if (
                lo_hi is not None
                and isinstance(param.default, ast.Constant)
                and isinstance(param.default.value, (int, float))
                and not isinstance(param.default.value, bool)
            ):
                lo, hi = lo_hi
                value = param.default.value
                if (lo is not None and value < lo) or (hi is not None and value > hi):
                    yield ctx.finding(
                        "REG002",
                        param.default,
                        f"default {param.name}={value!r} of {fn.name}() violates "
                        f"its own declared bounds [{lo}, {hi}]",
                    )
