"""Domain-aware static analysis for the repro codebase.

Five rule families, one framework:

* ``DET`` (:mod:`~repro.staticcheck.determinism`) — unseeded randomness,
  wall clocks, ``id()`` ordering, set-iteration order in contract code;
* ``EXEC`` (:mod:`~repro.staticcheck.executor`) — unpicklable workers and
  nested parallelism at the runtime entry points;
* ``OBS`` (:mod:`~repro.staticcheck.obs`) — span lifecycle discipline
  (spans must be opened via ``with``) and the clock monopoly of
  :mod:`repro.obs` (the one module allowed to read wall clocks);
* ``REG`` (:mod:`~repro.staticcheck.registry_schema`) — ``@register_scenario``
  decorator schemas cross-checked against generator signatures;
* ``SHP`` (:mod:`~repro.staticcheck.exprsites` +
  :mod:`~repro.staticcheck.shapes`) — expression-construction hygiene as a
  lint, plus :func:`~repro.staticcheck.shapes.infer`, the symbolic
  shape/dtype verifier behind :meth:`repro.assoc.planner.Plan.typecheck`.

Run it: ``python -m repro.staticcheck src/`` (see ``--help``).  Suppress one
line with ``# staticcheck: ignore[CODE]``; accept legacy findings with
``--baseline`` (this repository keeps its baseline empty).
"""

from repro.staticcheck.cli import default_rules, main
from repro.staticcheck.core import (
    Baseline,
    FileContext,
    Finding,
    Rule,
    check_file,
    check_paths,
    iter_python_files,
    parse_suppressions,
)
from repro.staticcheck.determinism import DeterminismRule
from repro.staticcheck.executor import ExecutorSafetyRule
from repro.staticcheck.exprsites import ExprSiteRule
from repro.staticcheck.obs import ObsRule
from repro.staticcheck.registry_schema import RegistrySchemaRule
from repro.staticcheck.shapes import ExprType, annotate, infer, infer_vec

__all__ = [
    "Baseline",
    "DeterminismRule",
    "ExecutorSafetyRule",
    "ExprSiteRule",
    "ExprType",
    "FileContext",
    "Finding",
    "ObsRule",
    "RegistrySchemaRule",
    "Rule",
    "annotate",
    "check_file",
    "check_paths",
    "default_rules",
    "infer",
    "infer_vec",
    "iter_python_files",
    "main",
    "parse_suppressions",
]
