"""R5 — the observability lint (``OBS``).

:mod:`repro.obs` is deliberately the *only* place this codebase reads a
clock: its ``monotonic_ns()`` / ``wall_ns()`` helpers are the sanctioned
instruments, and the determinism family (``DET002``) already bans wall-clock
reads in contract code.  This family closes the two gaps that leaves open:

* ``OBS001`` — a span opened outside a ``with`` block.  ``tracer.span(...)``
  returns a context manager whose ``__exit__`` records the span; calling it
  bare (``span = tracer.span(...); span.__enter__()`` or just dropping the
  value) leaks an un-recorded span and, worse, leaves it on the tracer's
  thread-local stack forever — every later span in that thread would parent
  under it.  The only sound idioms are a ``with`` item or handing it to an
  ``ExitStack.enter_context(...)``.
* ``OBS002`` — a wall-clock read anywhere outside :mod:`repro.obs` itself.
  ``DET002`` covers *contract* modules; this code covers the rest of the
  tree, so timing always routes through the sanctioned helpers and shows up
  in the metrics registry instead of ad-hoc ``time.time()`` arithmetic.
  Files that resolve to no ``repro`` module (fixtures, scripts) are treated
  as instrumented code and checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.core import FileContext, Finding
from repro.staticcheck.determinism import _CLOCK_SUFFIXES

__all__ = ["ObsRule"]


def _span_call(node: ast.expr) -> bool:
    """True for a ``<something>.span(...)`` call expression."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "span"
    )


def _sanctioned_span_calls(tree: ast.AST) -> "set[int]":
    """Ids of span calls used as ``with`` items or via ``enter_context``."""
    sanctioned: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _span_call(item.context_expr):
                    sanctioned.add(id(item.context_expr))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "enter_context"
            and node.args
            and _span_call(node.args[0])
        ):
            sanctioned.add(id(node.args[0]))
    return sanctioned


class ObsRule:
    """OBS — span lifecycle discipline and the clock monopoly of repro.obs."""

    name = "observability"
    codes = {
        "OBS001": "span opened outside a with block (never recorded, corrupts the span stack)",
        "OBS002": "wall-clock read outside repro.obs (route timing through obs.monotonic_ns/wall_ns)",
    }

    def _exempt(self, ctx: FileContext) -> bool:
        """Only :mod:`repro.obs` itself may read clocks directly."""
        module = ctx.module
        return module is not None and (
            module == "repro.obs" or module.startswith("repro.obs.")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        sanctioned = _sanctioned_span_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _span_call(node) and id(node) not in sanctioned:
                yield ctx.finding(
                    "OBS001",
                    node,
                    "span opened without a with block; use "
                    "'with tracer.span(...):' (or ExitStack.enter_context) so "
                    "__exit__ records it and pops the span stack",
                )
            target = ctx.imports.resolve(node.func)
            if target is None:
                continue
            for suffix in _CLOCK_SUFFIXES:
                if target == suffix or target.endswith("." + suffix):
                    yield ctx.finding(
                        "OBS002",
                        node,
                        f"direct clock read {suffix}() outside repro.obs; use "
                        f"repro.obs.monotonic_ns() for durations or "
                        f"repro.obs.wall_ns() for timestamps",
                    )
                    break
