"""The lint framework: findings, rules, suppressions, baselines, walkers.

This module is deliberately dependency-light — it imports only the standard
library — so ``python -m repro.staticcheck`` can lint a tree without pulling
in NumPy or realising any scenario.  Rules that *do* need domain constants
(the scenario family list, the expression node names) hardcode or lazily
import them.

The moving parts:

* :class:`Finding` — one diagnostic, with a stable :meth:`baseline_key`
  (path, rule, source-line text) that survives unrelated line drift;
* :class:`Rule` — the pluggable protocol: a named family that inspects one
  :class:`FileContext` and yields findings under one or more rule codes;
* :class:`FileContext` — parsed AST + source + resolved dotted module name +
  an :class:`ImportResolver` every rule shares;
* per-line suppressions — ``# staticcheck: ignore`` silences every rule on
  that line, ``# staticcheck: ignore[DET001,EXEC002]`` only the named codes;
* :class:`Baseline` — a JSON ledger of accepted findings: the checker fails
  only on findings *not* in the baseline, so a rule can be introduced before
  the tree is clean (this repository keeps an empty baseline).
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import StaticCheckError

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "ImportResolver",
    "Baseline",
    "SUPPRESS_PATTERN",
    "parse_suppressions",
    "iter_python_files",
    "check_file",
    "check_paths",
    "dotted_name",
    "module_name_for",
]

#: ``# staticcheck: ignore`` or ``# staticcheck: ignore[CODE, CODE]``.
SUPPRESS_PATTERN = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?"
)


# --------------------------------------------------------------------------- #
# findings
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule code anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by baselines: the line *text*, not the line number,
        so accepted findings survive edits elsewhere in the file."""
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.location}: {self.rule} {self.message}"


# --------------------------------------------------------------------------- #
# import resolution (shared by every rule)
# --------------------------------------------------------------------------- #


class ImportResolver:
    """Canonicalises names through the file's imports.

    ``import numpy as np`` makes ``np.random.rand`` resolve to
    ``numpy.random.rand``; ``from numpy.random import default_rng as rng``
    makes a bare ``rng`` resolve to ``numpy.random.default_rng``.  Only
    module-level and function-level ``import`` statements are consulted —
    dynamic importing is out of scope for a syntactic checker.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, expr: ast.expr) -> str | None:
        """The canonical dotted name of a Name/Attribute chain, or ``None``."""
        parts = dotted_name(expr)
        if parts is None:
            return None
        head, *rest = parts.split(".")
        head = self._aliases.get(head, head)
        return ".".join([head, *rest])


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# --------------------------------------------------------------------------- #
# file context
# --------------------------------------------------------------------------- #


def module_name_for(path: Path) -> str | None:
    """Best-effort dotted module name: walk up while ``__init__.py`` exists.

    ``src/repro/assoc/expr.py`` → ``repro.assoc.expr``; a loose script (or a
    test fixture) with no package parents returns ``None``.
    """
    resolved = path.resolve()
    if resolved.name == "__init__.py":
        parts: list[str] = []
        package_dir = resolved.parent
    else:
        parts = [resolved.stem]
        package_dir = resolved.parent
    while (package_dir / "__init__.py").exists():
        parts.append(package_dir.name)
        package_dir = package_dir.parent
    if len(parts) <= (0 if resolved.name == "__init__.py" else 1):
        return None
    return ".".join(reversed(parts)) or None


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    module: str | None = None
    imports: ImportResolver = field(default=None)  # type: ignore[assignment]

    @classmethod
    def from_path(cls, path: Path, display_path: str | None = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, path, display_path)

    @classmethod
    def from_source(
        cls, source: str, path: Path, display_path: str | None = None
    ) -> "FileContext":
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise StaticCheckError(f"{path}: not parseable python: {exc}") from None
        ctx = cls(
            path=path,
            display_path=display_path if display_path is not None else path.as_posix(),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module=module_name_for(path),
        )
        ctx.imports = ImportResolver(tree)
        return ctx

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.display_path,
            line=line,
            col=col + 1,
            message=message,
            snippet=self.snippet(line),
        )


@runtime_checkable
class Rule(Protocol):
    """One rule family: a name, a code table, and a ``check``.

    ``codes`` maps each rule code the family can emit (``"DET001"``) to a
    one-line description — the CLI rule table and ``--select`` both read it.
    """

    name: str
    codes: Mapping[str, str]

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        ...


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #


def parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: line number → frozenset of codes, or ``None``
    meaning *every* rule is ignored on that line."""
    out: dict[int, frozenset[str] | None] = {}
    for k, text in enumerate(lines, start=1):
        if "staticcheck" not in text:
            continue
        match = SUPPRESS_PATTERN.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[k] = None
        else:
            out[k] = frozenset(c.strip() for c in codes.split(",") if c.strip())
    return out


def _suppressed(finding: Finding, table: Mapping[int, frozenset[str] | None]) -> bool:
    if finding.line not in table:
        return False
    codes = table[finding.line]
    return codes is None or finding.rule in codes


# --------------------------------------------------------------------------- #
# walkers
# --------------------------------------------------------------------------- #


def _selected(code: str, select: Sequence[str] | None) -> bool:
    if not select:
        return True
    return any(code == want or code.startswith(want) for want in select)


def check_file(
    path: Path | str,
    rules: Sequence[Rule],
    *,
    select: Sequence[str] | None = None,
    display_path: str | None = None,
) -> list[Finding]:
    """Run *rules* over one file; suppressions applied, findings sorted."""
    ctx = FileContext.from_path(Path(path), display_path)
    table = parse_suppressions(ctx.lines)
    findings: list[Finding] = []
    for rule in rules:
        if select and not any(_selected(code, select) for code in rule.codes):
            continue
        for finding in rule.check(ctx):
            if finding.rule not in rule.codes:  # pragma: no cover - rule bug guard
                raise StaticCheckError(
                    f"rule {rule.name!r} emitted undeclared code {finding.rule!r}"
                )
            if _selected(finding.rule, select) and not _suppressed(finding, table):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[tuple[Path, str]]:
    """Every ``.py`` file under *paths* (files pass through), sorted, with the
    display path relative to the given root.  Hidden directories and
    ``__pycache__`` are skipped."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root, root.as_posix()
            continue
        if not root.exists():
            raise StaticCheckError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            relative = candidate.relative_to(root)
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in relative.parts
            ):
                continue
            yield candidate, (root / relative).as_posix()


def check_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule],
    *,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run *rules* over every python file under *paths* (project walker)."""
    findings: list[Finding] = []
    for path, display in iter_python_files(paths):
        findings.extend(check_file(path, rules, select=select, display_path=display))
    return findings


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #

#: Version stamp written into baseline documents.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Accepted findings, counted by :meth:`Finding.baseline_key`.

    ``filter`` subtracts baselined occurrences: if the baseline accepts two
    ``DET001`` findings on a given source line text and the tree now has
    three, one is reported.  An empty baseline reports everything — the
    steady state this repository holds itself to.
    """

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(f.baseline_key() for f in findings))

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        version = document.get("baseline_version")
        if version != BASELINE_VERSION:
            raise StaticCheckError(
                f"unsupported baseline_version {version!r} in {path} "
                f"(this checker reads {BASELINE_VERSION})"
            )
        entries: Counter = Counter()
        for row in document.get("entries", []):
            entries[(row["path"], row["rule"], row["snippet"])] = int(
                row.get("count", 1)
            )
        return cls(entries)

    def save(self, path: Path | str) -> None:
        rows = [
            {"path": p, "rule": r, "snippet": s, "count": count}
            for (p, r, s), count in sorted(self.entries.items())
        ]
        Path(path).write_text(
            json.dumps(
                {"baseline_version": BASELINE_VERSION, "entries": rows},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def filter(self, findings: Sequence[Finding]) -> tuple[list[Finding], int]:
        """``(new_findings, baselined_count)`` — occurrences beyond the
        baselined count for a key are reported, earliest lines accepted."""
        budget = Counter(self.entries)
        fresh: list[Finding] = []
        accepted = 0
        for finding in findings:
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                accepted += 1
            else:
                fresh.append(finding)
        return fresh, accepted
