"""Reporters: findings → text for humans, JSON for tooling."""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.staticcheck.core import Finding, Rule

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(
    findings: Sequence[Finding], *, baselined: int = 0, checked_files: int = 0
) -> str:
    """The human report: one ``path:line:col: CODE message`` per finding, the
    offending source line indented beneath, and a one-line summary."""
    lines: list[str] = []
    for f in findings:
        lines.append(f"{f.location}: {f.rule} {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    noun = "finding" if len(findings) == 1 else "findings"
    summary = f"{len(findings)} {noun}"
    if checked_files:
        summary += f" in {checked_files} files"
    if baselined:
        summary += f" ({baselined} baselined occurrences suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], *, baselined: int = 0, checked_files: int = 0
) -> str:
    """The machine report: a stable JSON document (sorted keys, one object
    per finding in report order)."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "baselined": baselined,
            "checked_files": checked_files,
        },
        indent=2,
        sort_keys=True,
    )


def render_rule_table(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` table: every code each family can emit."""
    rows: list[tuple[str, str, str]] = []
    for rule in rules:
        codes: Mapping[str, str] = rule.codes
        for code in sorted(codes):
            rows.append((code, rule.name, codes[code]))
    width_code = max((len(r[0]) for r in rows), default=4)
    width_name = max((len(r[1]) for r in rows), default=4)
    lines = [
        f"{code:<{width_code}}  {name:<{width_name}}  {desc}"
        for code, name, desc in rows
    ]
    return "\n".join(lines)
