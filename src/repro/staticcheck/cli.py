"""``python -m repro.staticcheck`` — lint a tree with the domain rules.

Exit codes: ``0`` clean (or everything baselined), ``1`` findings, ``2``
usage / framework error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import StaticCheckError
from repro.staticcheck.core import Baseline, Rule, check_paths
from repro.staticcheck.determinism import DeterminismRule
from repro.staticcheck.executor import ExecutorSafetyRule
from repro.staticcheck.exprsites import ExprSiteRule
from repro.staticcheck.obs import ObsRule
from repro.staticcheck.registry_schema import RegistrySchemaRule
from repro.staticcheck.report import render_json, render_rule_table, render_text

__all__ = ["default_rules", "main"]


def default_rules() -> tuple[Rule, ...]:
    """The five built-in rule families, in code order."""
    return (
        DeterminismRule(),
        ExecutorSafetyRule(),
        ObsRule(),
        RegistrySchemaRule(),
        ExprSiteRule(),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODE",
        help="only run codes matching this prefix (repeatable): DET, EXEC003, ...",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline JSON: accepted findings are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        print(render_rule_table(rules))
        return 0

    try:
        from repro.staticcheck.core import iter_python_files

        files = list(iter_python_files(args.paths))
        findings = check_paths(args.paths, rules, select=args.select)

        if args.write_baseline:
            Baseline.from_findings(findings).save(args.write_baseline)
            print(
                f"wrote baseline with {len(findings)} finding(s) to "
                f"{args.write_baseline}"
            )
            return 0

        baselined = 0
        if args.baseline:
            baseline_path = Path(args.baseline)
            if not baseline_path.exists():
                raise StaticCheckError(f"baseline file not found: {baseline_path}")
            findings, baselined = Baseline.load(baseline_path).filter(findings)
    except StaticCheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    render = render_json if args.format == "json" else render_text
    print(render(findings, baselined=baselined, checked_files=len(files)))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
