"""R1 — the determinism lint (``DET``).

The serial ≡ blocked bit-identity contract (and the spec → matrix
reproducibility contract built on it) makes *any* hidden source of run-to-run
variation a correctness bug inside kernel, scenario, and verification code:
an unseeded RNG changes the matrix, a wall-clock read changes provenance, an
``id()``-keyed sort or a bare ``set`` iteration changes term order — and term
order is part of the bit-identity guarantee.

Codes:

* ``DET001`` — unseeded randomness: module-level ``random.*`` calls, the
  legacy ``numpy.random.*`` global API, ``random.Random()`` and
  ``numpy.random.default_rng()`` with no seed argument;
* ``DET002`` — wall-clock reads (``time.time``, ``datetime.now``, …);
* ``DET003`` — ``id()`` used as a sort key (CPython address order is
  allocation order, which is not stable across runs);
* ``DET004`` — iterating a ``set`` into ordered output (``for x in {…}``,
  ``list(set(…))``, comprehensions over set expressions) — set iteration
  order depends on string hash randomisation.

The family only fires inside *contract* modules (``repro.assoc``,
``repro.graphs``, ``repro.scenarios``, ``repro.verify``, ``repro.runtime``,
``repro.analysis``, ``repro.core``, ``repro.obs``) — game, rendering, and
interpreter code is allowed to be as random as it likes.  Files that resolve
to no ``repro`` module at all (fixtures, scripts) are treated as contract
code.  ``repro.obs`` is exempt from ``DET002`` only: it owns the sanctioned
clock helpers (see :class:`repro.staticcheck.obs.ObsRule`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.core import FileContext, Finding

__all__ = ["DeterminismRule", "CONTRACT_PREFIXES"]

#: Module prefixes where the bit-identity / reproducibility contract applies.
#: ``repro.obs`` is contract code too (its exports must be deterministic),
#: but it is the *sole* carve-out from the DET002 wall-clock ban: it owns the
#: sanctioned clock helpers every other module is steered towards (see
#: :class:`repro.staticcheck.obs.ObsRule`).
CONTRACT_PREFIXES = (
    "repro.assoc",
    "repro.graphs",
    "repro.scenarios",
    "repro.verify",
    "repro.runtime",
    "repro.analysis",
    "repro.core",
    "repro.obs",
)

#: ``random`` module functions that consume the hidden global RNG state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "lognormvariate", "expovariate", "vonmisesvariate", "betavariate",
        "gammavariate", "paretovariate", "weibullvariate", "getrandbits",
        "randbytes", "seed",
    }
)

#: Legacy ``numpy.random`` global-state API (anything but Generator methods).
_NP_RANDOM_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "bytes",
        "uniform", "normal", "standard_normal", "poisson", "binomial",
        "exponential", "beta", "gamma", "geometric", "hypergeometric",
        "laplace", "logistic", "lognormal", "multinomial", "pareto",
        "rayleigh", "triangular", "vonmises", "wald", "weibull", "zipf",
        "get_state", "set_state",
    }
)

#: Wall-clock reads, by canonical dotted-name suffix.
_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Callables whose sole set argument is an *unordered* consumer (safe).
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
     "bool", "repr", "str"}
)

#: Callables that freeze set iteration order into ordered output.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    # set operators on set-typed operands: {a} | {b}
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    # set(...).union(...) / .difference(...) / .intersection(...)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"union", "difference", "intersection", "symmetric_difference"}
    ):
        return _is_set_expr(node.func.value)
    return False


def _key_uses_id(key: ast.expr) -> bool:
    if isinstance(key, ast.Name) and key.id == "id":
        return True
    if isinstance(key, ast.Lambda):
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
            for sub in ast.walk(key.body)
        )
    return False


class DeterminismRule:
    """DET — randomness, clocks, address order, and set order in contract code."""

    name = "determinism"
    codes = {
        "DET001": "unseeded randomness (global random/np.random state or seedless constructor)",
        "DET002": "wall-clock read in deterministic code",
        "DET003": "id() used as a sort key (address order is not reproducible)",
        "DET004": "iteration over a set feeding ordered output",
    }

    def applies(self, ctx: FileContext) -> bool:
        module = ctx.module
        if module is None or not (module == "repro" or module.startswith("repro.")):
            return True  # fixtures / scripts: assume contract code
        return module.startswith(CONTRACT_PREFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self.applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    yield from self._check_iter(ctx, gen.iter)

    # -- DET001 / DET002 ------------------------------------------------- #

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        target = ctx.imports.resolve(node.func)
        if target is not None:
            yield from self._check_random(ctx, node, target)
            yield from self._check_clock(ctx, node, target)
        yield from self._check_sort_key(ctx, node)
        yield from self._check_set_consumer(ctx, node)

    def _check_random(
        self, ctx: FileContext, node: ast.Call, target: str
    ) -> Iterator[Finding]:
        head, _, tail = target.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            yield ctx.finding(
                "DET001",
                node,
                f"call to random.{tail} uses the hidden global RNG; "
                f"thread a seeded random.Random / np.random.default_rng(seed) instead",
            )
        elif head in {"numpy.random", "np.random"} and tail in _NP_RANDOM_FNS:
            yield ctx.finding(
                "DET001",
                node,
                f"legacy numpy.random.{tail} mutates global RNG state; "
                f"use np.random.default_rng(seed) and pass the generator explicitly",
            )
        elif target in {"random.Random", "numpy.random.default_rng"} and not (
            node.args or node.keywords
        ):
            yield ctx.finding(
                "DET001",
                node,
                f"{tail}() without a seed draws OS entropy; pass an explicit seed "
                f"derived from the spec/config",
            )

    def _check_clock(
        self, ctx: FileContext, node: ast.Call, target: str
    ) -> Iterator[Finding]:
        module = ctx.module
        if module is not None and (
            module == "repro.obs" or module.startswith("repro.obs.")
        ):
            # the one sanctioned clock site: repro.obs wraps these reads in
            # monotonic_ns()/wall_ns() for everyone else to call
            return
        for suffix in _CLOCK_SUFFIXES:
            if target == suffix or target.endswith("." + suffix):
                yield ctx.finding(
                    "DET002",
                    node,
                    f"wall-clock read {suffix}() makes output depend on run time; "
                    f"deterministic code must take timestamps as inputs",
                )
                return

    # -- DET003 ----------------------------------------------------------- #

    def _check_sort_key(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        is_sort_call = (
            isinstance(node.func, ast.Name) and node.func.id in {"sorted", "min", "max"}
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if not is_sort_call:
            return
        for kw in node.keywords:
            if kw.arg == "key" and _key_uses_id(kw.value):
                yield ctx.finding(
                    "DET003",
                    node,
                    "ordering by id() sorts by allocation address, which varies "
                    "between runs; sort by a value-derived key",
                )

    # -- DET004 ----------------------------------------------------------- #

    def _check_iter(self, ctx: FileContext, iter_node: ast.expr) -> Iterator[Finding]:
        if _is_set_expr(iter_node):
            yield ctx.finding(
                "DET004",
                iter_node,
                "iterating a set produces hash-order, which is randomised per "
                "process for strings; wrap in sorted(...) before ordered use",
            )

    def _check_set_consumer(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id in _ORDER_SENSITIVE):
            return
        if node.func.id in _ORDER_INSENSITIVE:  # pragma: no cover - disjoint sets
            return
        if len(node.args) >= 1 and _is_set_expr(node.args[0]):
            yield ctx.finding(
                "DET004",
                node,
                f"{node.func.id}(set) freezes nondeterministic hash order into a "
                f"sequence; use sorted(...) to fix the order first",
            )
