"""R4 — static shape/dtype inference over lazy expression trees.

The builder methods on :class:`~repro.assoc.expr.MatExpr` validate operand
shapes, but the raw node constructors (``MxM(a, b, sr)``, ``UnionAll(...)``)
do not — an ill-formed tree built programmatically (a planner rewrite, a
test harness, generated code) only explodes when a kernel finally gathers
mismatched arrays.  :func:`infer` walks the tree *without executing it* and
proves, or refutes:

* inner-dimension conformability of ``mxm`` / ``mxv``;
* shape equality across element-wise unions and intersections;
* transpose propagation;
* mask-shape compatibility (including the vector-mask length rule);
* the result dtype, using the *same* rules as the kernels — size-1 ufunc
  probes for semiring products (mirroring ``_mxm_out_dtype`` /
  ``_masked_mxv_serial``), ``np.result_type`` promotion for unions and
  statically-empty products, dtype preservation for row reductions.

Failures raise :class:`~repro.errors.ShapeInferenceError` whose ``path``
names the offending subtree in ``explain()`` notation — ``mxm.left.union[2]``
means "the third operand of the union on the left side of the product".

One deliberate approximation: the eager ``mxm`` kernel degrades to
``np.result_type`` when an *operand* turns out empty at runtime.  Emptiness
of a leaf is statically visible (and honoured here); emptiness of a computed
operand is not, so :func:`infer` reports the nonempty-path dtype for nested
products.  The ``static_shapes`` oracle accounts for this by comparing
dtypes only on non-degenerate corpus results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeInferenceError

__all__ = ["ExprType", "infer", "infer_vec", "annotate"]


@dataclass(frozen=True)
class ExprType:
    """The static type of an expression: result shape and element dtype."""

    shape: tuple[int, ...]
    dtype: np.dtype

    def __str__(self) -> str:
        return f"{self.shape} {np.dtype(self.dtype).name}"


def _probe_dtype(op, left: np.dtype, right: np.dtype) -> np.dtype:  # noqa: ANN001
    """The dtype *op* produces on operands of the given dtypes (size-1 probe,
    the rule the kernels themselves use — ``ones`` avoids divide warnings)."""
    return np.asarray(op(np.ones(1, dtype=left), np.ones(1, dtype=right))).dtype


def _fail(path: str, message: str) -> ShapeInferenceError:
    return ShapeInferenceError(message, path=path)


def infer(expr, mask=None, *, path: str = "expr") -> ExprType:  # noqa: ANN001
    """Statically type a :class:`~repro.assoc.expr.MatExpr` tree.

    *mask* is anything :func:`repro.assoc.expr.as_mask` accepts; its shape is
    checked against the expression's.  Raises
    :class:`~repro.errors.ShapeInferenceError` on any inconsistency.
    """
    from repro.assoc.expr import as_mask

    t = _infer_mat(expr, path)
    m = as_mask(mask)
    if m is not None and m.shape != t.shape:
        raise _fail(
            path,
            f"mask shape {m.shape} does not match expression shape {t.shape}",
        )
    return t


def infer_vec(vexpr, allow=None, *, path: str = "expr") -> ExprType:  # noqa: ANN001
    """Statically type a :class:`~repro.assoc.expr.VecExpr` tree (with an
    optional dense boolean row-mask whose length is checked)."""
    from repro.assoc import expr as E

    if isinstance(vexpr, E.MxV):
        mat_t = _infer_mat(vexpr.mat, f"{path}.mxv.mat")
        x = np.asarray(vexpr.x)
        if x.ndim != 1:
            raise _fail(f"{path}.mxv.x", f"operand vector is {x.ndim}-D, expected 1-D")
        if x.shape != (mat_t.shape[1],):
            raise _fail(
                f"{path}.mxv",
                f"vector length {x.shape[0]} does not match matrix columns "
                f"{mat_t.shape[1]}",
            )
        out = ExprType(
            (mat_t.shape[0],), _probe_dtype(vexpr.semiring.mult, mat_t.dtype, x.dtype)
        )
    elif isinstance(vexpr, E.ReduceRows):
        mat_t = _infer_mat(vexpr.mat, f"{path}.reduce_rows.mat")
        # monoid reduceat preserves the input dtype (see Monoid.reduceat)
        out = ExprType((mat_t.shape[0],), mat_t.dtype)
    else:
        raise _fail(path, f"unknown vector expression node {type(vexpr).__name__}")

    if allow is not None:
        arr = np.asarray(allow)
        if arr.shape != out.shape:
            raise _fail(
                path,
                f"vector mask length {arr.shape} does not match result shape "
                f"{out.shape}",
            )
    return out


def _infer_mat(e, path: str) -> ExprType:  # noqa: ANN001
    from repro.assoc import expr as E

    if isinstance(e, E.MatLeaf):
        nrows, ncols = e.shape  # the descriptor flag is folded into .shape
        return ExprType((nrows, ncols), e.csr.dtype)

    if isinstance(e, E.MxM):
        lt = _infer_mat(e.left, f"{path}.mxm.left")
        rt = _infer_mat(e.right, f"{path}.mxm.right")
        if lt.shape[1] != rt.shape[0]:
            raise _fail(
                f"{path}.mxm",
                f"inner dimension mismatch: {lt.shape} @ {rt.shape} "
                f"(left has {lt.shape[1]} columns, right has {rt.shape[0]} rows)",
            )
        if _statically_empty(e.left) or _statically_empty(e.right):
            dtype = np.result_type(lt.dtype, rt.dtype)  # kernel's empty path
        else:
            dtype = _probe_dtype(e.semiring.mult, lt.dtype, rt.dtype)
        return ExprType((lt.shape[0], rt.shape[1]), dtype)

    if isinstance(e, E.EWiseMult):
        lt = _infer_mat(e.left, f"{path}.intersect.left")
        rt = _infer_mat(e.right, f"{path}.intersect.right")
        if lt.shape != rt.shape:
            raise _fail(
                f"{path}.intersect",
                f"element-wise shape mismatch: {lt.shape} vs {rt.shape}",
            )
        return ExprType(lt.shape, _probe_dtype(e.mult, lt.dtype, rt.dtype))

    if isinstance(e, E.UnionAll):
        parts = [
            _infer_mat(p, f"{path}.union[{k}]") for k, p in enumerate(e.parts)
        ]
        first = parts[0]
        for k, pt in enumerate(parts[1:], start=1):
            if pt.shape != first.shape:
                raise _fail(
                    f"{path}.union[{k}]",
                    f"union operand shape {pt.shape} does not match "
                    f"operand 0 shape {first.shape}",
                )
        return ExprType(first.shape, np.result_type(*(pt.dtype for pt in parts)))

    if isinstance(e, E.TransposeExpr):
        ct = _infer_mat(e.child, f"{path}.transpose")
        return ExprType((ct.shape[1], ct.shape[0]), ct.dtype)

    raise _fail(path, f"unknown expression node {type(e).__name__}")


def _statically_empty(e) -> bool:  # noqa: ANN001
    """Whether *e* is a leaf that is known (now) to hold zero entries."""
    from repro.assoc.expr import MatLeaf

    return isinstance(e, MatLeaf) and e.csr.nnz == 0


# --------------------------------------------------------------------------- #
# explain()-style tree rendering
# --------------------------------------------------------------------------- #


def _node_label(e) -> str:  # noqa: ANN001
    from repro.assoc import expr as E

    if isinstance(e, E.MatLeaf):
        flag = ", transposed" if e.transposed else ""
        return f"MatLeaf(nnz={e.csr.nnz}{flag})"
    if isinstance(e, E.MxM):
        return f"MxM[{e.semiring.name}]" if hasattr(e.semiring, "name") else "MxM"
    if isinstance(e, E.EWiseMult):
        return "EWiseMult"
    if isinstance(e, E.UnionAll):
        return f"UnionAll[{len(e.parts)}]"
    if isinstance(e, E.TransposeExpr):
        return "Transpose"
    if isinstance(e, E.MxV):
        return "MxV"
    if isinstance(e, E.ReduceRows):
        return "ReduceRows"
    return type(e).__name__


def _children(e):  # noqa: ANN001
    from repro.assoc import expr as E

    if isinstance(e, (E.MxM, E.EWiseMult)):
        return [e.left, e.right]
    if isinstance(e, E.UnionAll):
        return list(e.parts)
    if isinstance(e, E.TransposeExpr):
        return [e.child]
    if isinstance(e, (E.MxV, E.ReduceRows)):
        return [e.mat]
    return []


def annotate(expr, *, _depth: int = 0) -> str:  # noqa: ANN001
    """An indented rendering of the tree, each node tagged with its inferred
    type — or with the inference error, for the subtree that fails.

    This is what :meth:`repro.assoc.planner.Plan.explain` embeds, so a
    rejected plan points at the offending node rather than at the tree root.
    """
    from repro.assoc.expr import VecExpr

    indent = "  " * _depth
    try:
        if isinstance(expr, VecExpr):
            typed = str(infer_vec(expr))
        else:
            typed = str(_infer_mat(expr, "expr"))
        tag = f"{indent}{_node_label(expr)} :: {typed}"
    except ShapeInferenceError as exc:
        tag = f"{indent}{_node_label(expr)} !! {exc.path}: {exc.message}"
    lines = [tag]
    for child in _children(expr):
        lines.append(annotate(child, _depth=_depth + 1))
    return "\n".join(lines)
