"""R2 — the executor-safety checker (``EXEC``).

The process backend ships the worker function to child interpreters by
pickling it, and pickle can only serialise functions importable by qualified
name.  Lambdas, closures, and functions defined inside another function all
fail — but only at runtime, and only when ``backend="process"`` is selected,
so the bug hides behind the serial and thread backends until deployment.

Codes:

* ``EXEC001`` — a ``lambda`` flows directly into a parallel entry point
  (``parallel_map``, ``async_submit``, ``generate_batch``,
  ``run_batch_sync``);
* ``EXEC002`` — a locally-defined function or a name bound to a lambda flows
  into a parallel entry point (simple in-scope aliasing is resolved);
* ``EXEC003`` — a parallel entry point is called *inside* a worker function:
  nested pools deadlock the process backend and are rejected by the
  ``serial_region`` guard only once a task actually runs.

The ``on_progress`` keyword is exempt everywhere: progress callbacks execute
in the *calling* thread and never cross the pickle boundary (that contract is
documented on :func:`repro.runtime.parallel_map`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.core import FileContext, Finding, dotted_name

__all__ = ["ExecutorSafetyRule", "PARALLEL_ENTRY_POINTS"]

#: Final name segments that identify a parallel entry point.
PARALLEL_ENTRY_POINTS = frozenset(
    {"parallel_map", "async_submit", "generate_batch", "run_batch_sync"}
)

#: Keyword arguments that run in the calling thread (never pickled).
_EXEMPT_KWARGS = frozenset({"on_progress"})


def _entry_point_name(ctx: FileContext, call: ast.Call) -> str | None:
    """The matched entry-point name if *call* targets one, else ``None``."""
    target = ctx.imports.resolve(call.func) or dotted_name(call.func)
    if target is None:
        return None
    tail = target.rpartition(".")[2]
    return tail if tail in PARALLEL_ENTRY_POINTS else None


class _Scope:
    """One lexical function scope: which local names are unpicklable."""

    __slots__ = ("node", "local_defs", "lambda_names")

    def __init__(self, node: ast.AST) -> None:
        self.node = node
        self.local_defs: set[str] = set()
        self.lambda_names: set[str] = set()


class ExecutorSafetyRule:
    """EXEC — unpicklable workers and nested parallelism, found statically."""

    name = "executor-safety"
    codes = {
        "EXEC001": "lambda passed to a parallel entry point (unpicklable on the process backend)",
        "EXEC002": "closure/locally-defined function passed to a parallel entry point",
        "EXEC003": "nested parallelism: entry point called inside a worker function",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        worker_names: set[str] = set()
        entry_calls_by_function: dict[ast.AST, list[ast.Call]] = {}
        self._visit(
            ctx, ctx.tree, [_Scope(ctx.tree)], findings, worker_names,
            entry_calls_by_function,
        )
        # Second pass: a function whose *name* is handed to an entry point as
        # the worker must not itself fan out (EXEC003).
        for fn_node, calls in entry_calls_by_function.items():
            if getattr(fn_node, "name", None) in worker_names:
                for call in calls:
                    findings.append(
                        ctx.finding(
                            "EXEC003",
                            call,
                            f"worker function {fn_node.name!r} calls a parallel "
                            f"entry point; nested pools deadlock the process "
                            f"backend — hoist the inner fan-out to the caller",
                        )
                    )
        yield from findings

    # ------------------------------------------------------------------ #

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        scopes: list[_Scope],
        findings: list[Finding],
        worker_names: set[str],
        entry_calls_by_function: dict[ast.AST, list[ast.Call]],
    ) -> None:
        in_function = not isinstance(scopes[-1].node, ast.Module)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    # a def nested inside a function is a closure, unpicklable
                    scopes[-1].local_defs.add(child.name)
                self._visit(
                    ctx, child, scopes + [_Scope(child)], findings,
                    worker_names, entry_calls_by_function,
                )
                continue
            if isinstance(child, ast.Assign) and isinstance(child.value, ast.Lambda):
                # name = lambda ...: unpicklable wherever it is bound —
                # even module-level lambdas pickle by (unusable) qualname
                for tgt in child.targets:
                    if isinstance(tgt, ast.Name):
                        scopes[-1].lambda_names.add(tgt.id)
            if isinstance(child, ast.Call):
                entry = _entry_point_name(ctx, child)
                if entry is not None:
                    self._check_entry_call(
                        ctx, child, entry, scopes, findings, worker_names
                    )
                    if scopes:
                        entry_calls_by_function.setdefault(
                            scopes[-1].node, []
                        ).append(child)
            self._visit(
                ctx, child, scopes, findings, worker_names,
                entry_calls_by_function,
            )

    def _check_entry_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        entry: str,
        scopes: list[_Scope],
        findings: list[Finding],
        worker_names: set[str],
    ) -> None:
        candidates: list[tuple[ast.expr, str | None]] = [
            (arg, None) for arg in call.args
        ]
        candidates += [
            (kw.value, kw.arg)
            for kw in call.keywords
            if kw.arg not in _EXEMPT_KWARGS
        ]
        for value, kwarg in candidates:
            where = f"keyword {kwarg!r} of" if kwarg else "argument to"
            if isinstance(value, ast.Lambda):
                findings.append(
                    ctx.finding(
                        "EXEC001",
                        value,
                        f"lambda as {where} {entry}() cannot be pickled by the "
                        f"process backend; use a module-level function or "
                        f"functools.partial of one",
                    )
                )
            elif isinstance(value, ast.Name):
                binding = self._resolve_local(value.id, scopes)
                if binding == "lambda":
                    findings.append(
                        ctx.finding(
                            "EXEC002",
                            value,
                            f"{value.id!r} is bound to a lambda in this scope and "
                            f"flows into {entry}(); the process backend cannot "
                            f"pickle it — define it at module level",
                        )
                    )
                elif binding == "localdef":
                    findings.append(
                        ctx.finding(
                            "EXEC002",
                            value,
                            f"{value.id!r} is defined inside a function and flows "
                            f"into {entry}(); closures are unpicklable on the "
                            f"process backend — hoist it to module level",
                        )
                    )
                else:
                    worker_names.add(value.id)

    @staticmethod
    def _resolve_local(name: str, scopes: list[_Scope]) -> str | None:
        for scope in reversed(scopes):
            if name in scope.lambda_names:
                return "lambda"
            if name in scope.local_defs:
                return "localdef"
        return None
