"""Entry point for ``python -m repro.staticcheck``."""

import sys

from repro.staticcheck.cli import main

sys.exit(main())
