"""Rule-based pattern classification: recover the pattern family from a matrix.

This is the inverse of the generators — given a traffic matrix, name the
pattern.  It serves three purposes:

* **round-trip property tests** — every generator's output must classify back
  to its own family,
* the **AnalystPlayer** bot, which answers quiz questions the way the module
  teaches students to (read the matrix, recognise the signature),
* auto-generation of distractor answers for new modules.

Classification is structural (degrees, blocks, symmetry), not exact-match
against generator output, so educator-tweaked variants still classify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spaces import NetworkSpace
from repro.core.traffic_matrix import TrafficMatrix
from repro.graphs.metrics import reciprocity

__all__ = [
    "classify_graph_pattern",
    "classify_topology",
    "classify_scenario",
    "classify_spec",
    "classify_matrix",
    "ScenarioScore",
    "GRAPH_PATTERN_NAMES",
    "TOPOLOGY_NAMES",
    "SCENARIO_NAMES",
]

GRAPH_PATTERN_NAMES = (
    "star",
    "clique",
    "bipartite",
    "tree",
    "ring",
    "mesh",
    "toroidal_mesh",
    "self_loops",
    "triangle",
)

TOPOLOGY_NAMES = (
    "isolated_links",
    "single_links",
    "internal_supernode",
    "external_supernode",
)

SCENARIO_NAMES = (
    "planning",
    "staging",
    "infiltration",
    "lateral_movement",
    "security",
    "defense",
    "deterrence",
    "command_and_control",
    "botnet_clients",
    "ddos_attack",
    "backscatter",
)


# --------------------------------------------------------------------------- #
# graph-theory patterns (Fig. 10)
# --------------------------------------------------------------------------- #


def _undirected(p: np.ndarray) -> np.ndarray:
    """Symmetrised off-diagonal boolean pattern."""
    u = p | p.T
    np.fill_diagonal(u, False)
    return u


def _active(p: np.ndarray) -> np.ndarray:
    """Vertices touching any traffic (including self loops)."""
    return np.flatnonzero(p.any(axis=0) | p.any(axis=1))


def _is_connected(u: np.ndarray, active: np.ndarray) -> bool:
    if active.size == 0:
        return False
    seen = {int(active[0])}
    frontier = [int(active[0])]
    adj = {int(v): np.flatnonzero(u[v]).tolist() for v in active.tolist()}
    while frontier:
        v = frontier.pop()
        for w in adj.get(v, ()):
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen == set(int(v) for v in active.tolist())


def _count_edges(u: np.ndarray) -> int:
    return int(u.sum()) // 2


def _is_complete_bipartite(u: np.ndarray, active: np.ndarray) -> bool:
    """2-colour the active subgraph and check every cross-pair is present."""
    color: dict[int, int] = {}
    order = active.tolist()
    for start in order:
        if start in color:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            v = stack.pop()
            for w in np.flatnonzero(u[v]).tolist():
                if w not in color:
                    color[w] = 1 - color[v]
                    stack.append(w)
                elif color[w] == color[v]:
                    return False
    left = [v for v in order if color[v] == 0]
    right = [v for v in order if color[v] == 1]
    if not left or not right:
        return False
    return all(u[v, w] for v in left for w in right)


def _matches_grid(u: np.ndarray, active: np.ndarray, *, wrap: bool) -> bool:
    """Does the active subgraph equal some rows×cols grid (torus if wrap)?"""
    m = active.size
    if m < 4:
        return False
    sub = u[np.ix_(active, active)]
    for rows in range(1, m + 1):
        if m % rows:
            continue
        cols = m // rows
        if rows > cols:
            break
        expected = np.zeros((m, m), dtype=bool)
        for r in range(rows):
            for c in range(cols):
                v = r * cols + c
                if wrap:
                    if cols > 1:
                        expected[v, r * cols + (c + 1) % cols] = True
                    if rows > 1:
                        expected[v, ((r + 1) % rows) * cols + c] = True
                else:
                    if c + 1 < cols:
                        expected[v, v + cols * 0 + 1] = True
                    if r + 1 < rows:
                        expected[v, v + cols] = True
        expected |= expected.T
        if wrap and rows == 1:
            continue  # a 1×m "torus" is just a ring; let the ring rule claim it
        if np.array_equal(sub, expected):
            return True
    return False


def classify_graph_pattern(matrix: TrafficMatrix) -> str:
    """Name the Fig. 10 family of *matrix*, or ``"unknown"``.

    Ambiguity between overlapping families (a triangle **is** a 3-clique and a
    3-ring; a star **is** a tree and a complete bipartite K1,k) resolves in a
    fixed specific-to-general order, matching how the module presents them.
    """
    p = matrix.packets > 0
    if not p.any():
        return "unknown"
    diag = bool(np.diag(p).any())
    off = p.copy()
    np.fill_diagonal(off, False)
    if diag and not off.any():
        return "self_loops"
    if diag:
        return "unknown"  # mixed self loops + links is a composite, not a family

    # Directionality is deliberately ignored from here on: the generators
    # emit one-directional variants of every family (``mutual=False``), and
    # a directed ring is still the ring family — classification works on the
    # symmetrised structure.  (The spec-space fuzzer found the old
    # symmetric-only gates rejecting exactly those variants.)
    u = _undirected(p)
    active = _active(p)
    m = active.size
    deg = u[np.ix_(active, active)].sum(axis=1)

    if m == 3 and _count_edges(u) == 3:
        return "triangle"

    if m >= 3 and np.all(deg == m - 1):
        return "clique"

    # star: one hub adjacent to all others, leaves adjacent only to the hub
    if m >= 3:
        hub_candidates = np.flatnonzero(deg == m - 1)
        if hub_candidates.size == 1 and np.sum(deg == 1) == m - 1:
            return "star"

    if m >= 3 and np.all(deg == 2) and _is_connected(u, active):
        # a single cycle through every active vertex
        if _count_edges(u) == m:
            return "ring"

    if _matches_grid(u, active, wrap=True):
        return "toroidal_mesh"

    if _matches_grid(u, active, wrap=False):
        return "mesh"

    if _is_complete_bipartite(u, active):
        return "bipartite"

    # tree: connected and acyclic (checked last — stars and paths are trees)
    if m >= 2 and _is_connected(u, active) and _count_edges(u) == m - 1:
        return "tree"

    return "unknown"


# --------------------------------------------------------------------------- #
# traffic topologies (Fig. 6)
# --------------------------------------------------------------------------- #


def classify_topology(matrix: TrafficMatrix) -> str:
    """Name the Fig. 6 topology of *matrix*, or ``"unknown"``."""
    p = matrix.packets > 0
    off = p.copy()
    np.fill_diagonal(off, False)
    if not off.any():
        return "unknown"
    u = _undirected(p)
    active = _active(off)
    deg = u[np.ix_(active, active)].sum(axis=1)
    rec = reciprocity(matrix)

    if np.all(deg == 1):
        return "isolated_links" if rec == 1.0 else "single_links"

    hubs = np.flatnonzero(u.sum(axis=1) >= max(2, active.size - 1))
    if hubs.size == 1:
        hub = int(hubs[0])
        leaves = [int(v) for v in active.tolist() if v != hub]
        if all(int(u[v].sum()) == 1 for v in leaves):
            sm = matrix.space_map
            hub_space = sm.space_of(hub)
            if hub_space is NetworkSpace.BLUE and all(
                sm.space_of(v) is NetworkSpace.BLUE for v in leaves
            ):
                return "internal_supernode"
            if hub_space is not NetworkSpace.BLUE and all(
                sm.space_of(v) is NetworkSpace.BLUE for v in leaves
            ):
                return "external_supernode"
    return "unknown"


# --------------------------------------------------------------------------- #
# scenario stages (Figs. 7–9)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScenarioScore:
    """Ranked scenario candidates with the block evidence used."""

    best: str
    scores: dict[str, float]
    active_blocks: dict[tuple[str, str], int]


def _block_signature(matrix: TrafficMatrix) -> dict[tuple[str, str], int]:
    return {
        (s.value, d.value): packets
        for (s, d), packets in matrix.space_traffic().items()
        if packets > 0
    }


def classify_scenario(matrix: TrafficMatrix) -> ScenarioScore:
    """Score every Fig. 7–9 stage against the matrix's space-block signature.

    Each stage has an expected set of active (source-space, dest-space)
    blocks; the score is Jaccard similarity between expected and observed
    blocks, with structural tie-breakers for pairs that share a signature
    (security vs lateral movement both live in blue→blue; planning vs C2 both
    live in red→red; the flood and its backscatter are transposes).
    """
    B, G, R = "blue", "grey", "red"
    expected: dict[str, set[tuple[str, str]]] = {
        "planning": {(R, R)},
        "staging": {(R, G), (G, G)},
        "infiltration": {(G, B)},
        "lateral_movement": {(B, B)},
        "security": {(B, B)},
        "defense": {(B, G), (G, B), (R, G)},
        "deterrence": {(R, B), (B, R), (R, R)},
        "command_and_control": {(R, R)},
        "botnet_clients": {(R, R), (R, G)},
        "ddos_attack": {(R, B), (G, B)},
        "backscatter": {(B, R), (B, G)},
    }
    observed = set(_block_signature(matrix))
    scores: dict[str, float] = {}
    for name, exp in expected.items():
        union = exp | observed
        scores[name] = len(exp & observed) / len(union) if union else 0.0

    # structural tie-breakers on top of the block evidence
    p = matrix.packets > 0
    sm = matrix.space_map
    rec = reciprocity(matrix)

    if observed == {(B, B)}:
        blue = sm.indices(NetworkSpace.BLUE)
        block = p[np.ix_(blue, blue)]
        full = block.sum() == blue.size * (blue.size - 1)
        scores["security"] += 0.5 if full else -0.25
        scores["lateral_movement"] += 0.5 if not full else -0.25

    if observed == {(R, R)}:
        red = sm.indices(NetworkSpace.RED)
        block = p[np.ix_(red, red)]
        everyone = bool(np.all(block.any(axis=0) | block.any(axis=1)))
        scores["planning"] += 0.5 if everyone else -0.25
        scores["command_and_control"] += 0.5 if not everyone else -0.25

    if observed and observed <= {(R, B), (G, B)}:
        scores["ddos_attack"] += 0.25 if rec == 0.0 else -0.25
    if observed and observed <= {(B, R), (B, G)}:
        scores["backscatter"] += 0.25 if rec == 0.0 else -0.25
    if observed == {(R, R), (R, G)} or observed == {(R, G)}:
        # identical tasking counts are the botnet-client fingerprint
        vals = matrix.packets[matrix.packets > 0]
        scores["botnet_clients"] += 0.25 if vals.size and np.all(vals == vals[0]) else 0.0

    best = max(scores.items(), key=lambda kv: kv[1])[0]
    return ScenarioScore(best=best, scores=scores, active_blocks=_block_signature(matrix))


# --------------------------------------------------------------------------- #
# declarative specs (scenario API round trip)
# --------------------------------------------------------------------------- #

def classify_matrix(matrix: TrafficMatrix, family: str) -> str:
    """Name an already-built matrix using the classifier for *family*.

    Routes graph patterns → :func:`classify_graph_pattern`, Fig. 6
    topologies → :func:`classify_topology`, and attack/defense/DDoS stages →
    :func:`classify_scenario`, reporting the prediction in **registry**
    vocabulary.  This is the shared dispatch behind :func:`classify_spec`;
    callers that already hold the matrix (the differential classifier oracle)
    use it directly instead of rebuilding the spec.
    """
    from repro.scenarios.registry import REGISTRY_ALIASES

    if family == "pattern":
        predicted = classify_graph_pattern(matrix)
    elif family == "topology":
        predicted = classify_topology(matrix)
    else:
        predicted = classify_scenario(matrix).best
    # classifier vocabulary uses catalogue names; report registry vocabulary
    return REGISTRY_ALIASES.get(predicted, predicted)


def classify_spec(spec) -> str:  # noqa: ANN001 - ScenarioSpec, imported lazily
    """Realise a :class:`~repro.scenarios.ScenarioSpec` and name what it built.

    ``classify_spec(ScenarioSpec(base=name)) == name`` is the round-trip
    property the scenario tests assert; see :func:`classify_matrix` for the
    family dispatch.
    """
    from repro.scenarios.registry import get_generator

    return classify_matrix(spec.build(), get_generator(spec.base).family)
