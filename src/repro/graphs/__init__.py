"""Traffic-pattern generators, metrics, and classifiers for all paper figures."""

import warnings as _warnings

from repro.graphs.attack import (
    ATTACK_STAGES,
    full_attack,
    infiltration,
    lateral_movement,
    planning,
    staging,
)
from repro.graphs.classify import (
    GRAPH_PATTERN_NAMES,
    SCENARIO_NAMES,
    TOPOLOGY_NAMES,
    ScenarioScore,
    classify_graph_pattern,
    classify_scenario,
    classify_spec,
    classify_topology,
)
from repro.graphs.compose import challenge, overlay, sequence
from repro.graphs.ddos import (
    DDOS_COMPONENTS,
    BotnetRoles,
    backscatter,
    botnet_clients,
    command_and_control,
    ddos_attack,
    full_ddos,
)
# NOTE: the ``defense`` *function* is exported as ``defense_pattern`` — its
# canonical name, matching the scenario registry — so the
# ``repro.graphs.defense`` submodule stays importable by its natural name.
# ``repro.graphs.defense`` as an *attribute* is a deprecated alias for the
# function (see ``__getattr__`` below).
from repro.graphs.defense import DEFENSE_CONCEPTS, deterrence, full_posture, security
from repro.graphs.defense import defense as defense_pattern
from repro.graphs.metrics import (
    TrafficStats,
    degree_histogram,
    diagonal_fraction,
    power_law_slope,
    reciprocity,
    summarize,
    supernodes,
)
from repro.graphs.noise import background_noise, with_noise
from repro.graphs.patterns import (
    PATTERN_GENERATORS,
    bipartite,
    clique,
    grid_dims,
    mesh,
    ring,
    self_loops,
    star,
    toroidal_mesh,
    tree,
    triangle,
)
from repro.graphs.topologies import (
    TOPOLOGY_GENERATORS,
    external_supernode,
    internal_supernode,
    isolated_links,
    single_links,
    template_matrix,
)

__all__ = [
    # Fig. 10
    "star", "clique", "bipartite", "tree", "ring", "mesh", "toroidal_mesh",
    "self_loops", "triangle", "grid_dims", "PATTERN_GENERATORS",
    # Fig. 6
    "isolated_links", "single_links", "internal_supernode", "external_supernode",
    "template_matrix", "TOPOLOGY_GENERATORS",
    # Fig. 7
    "planning", "staging", "infiltration", "lateral_movement", "full_attack",
    "ATTACK_STAGES",
    # Fig. 8
    "security", "defense_pattern", "deterrence", "full_posture", "DEFENSE_CONCEPTS",
    # Fig. 9
    "command_and_control", "botnet_clients", "ddos_attack", "backscatter",
    "full_ddos", "BotnetRoles", "DDOS_COMPONENTS",
    # composition / noise
    "overlay", "sequence", "challenge", "background_noise", "with_noise",
    # metrics
    "TrafficStats", "summarize", "reciprocity", "diagonal_fraction",
    "supernodes", "degree_histogram", "power_law_slope",
    # classification
    "classify_graph_pattern", "classify_topology", "classify_scenario",
    "classify_spec",
    "ScenarioScore", "GRAPH_PATTERN_NAMES", "TOPOLOGY_NAMES", "SCENARIO_NAMES",
]

# Unshadow the ``defense`` submodule binding the import machinery created, so
# the deprecated-alias ``__getattr__`` below owns the name.  ``from
# repro.graphs.defense import ...`` and ``importlib.import_module`` still
# resolve through ``sys.modules`` as usual; *attribute* access (including the
# ``import repro.graphs.defense`` dotted idiom, which binds via getattr on
# this package) goes through the alias below.
del defense  # noqa: F821 - bound as a side effect of the submodule imports


class _DefenseAlias:
    """Deprecated ``repro.graphs.defense`` attribute: both meanings keep working.

    Historically the name was the re-exported *function* (shadowing the
    submodule); today the canonical function name is ``defense_pattern``.
    This alias is callable as the function and forwards attribute access
    (``repro.graphs.defense.security`` …) to the submodule, so neither old
    idiom breaks while the DeprecationWarning steers callers off the
    ambiguous name.
    """

    def __call__(self, *args, **kwargs):
        return defense_pattern(*args, **kwargs)

    def __getattr__(self, name: str):
        import sys

        return getattr(sys.modules["repro.graphs.defense"], name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<deprecated alias 'repro.graphs.defense' (use defense_pattern)>"


_defense_alias = _DefenseAlias()


def __getattr__(name: str):
    if name == "defense":
        _warnings.warn(
            "'repro.graphs.defense' is ambiguous (function vs submodule) and "
            "deprecated; call 'repro.graphs.defense_pattern' (also the "
            "scenario-registry name) for the function, or import the "
            "submodule explicitly via 'from repro.graphs.defense import ...'",
            DeprecationWarning,
            stacklevel=2,
        )
        return _defense_alias
    raise AttributeError(f"module 'repro.graphs' has no attribute {name!r}")
