"""Traffic-pattern generators, metrics, and classifiers for all paper figures."""

from repro.graphs.attack import (
    ATTACK_STAGES,
    full_attack,
    infiltration,
    lateral_movement,
    planning,
    staging,
)
from repro.graphs.classify import (
    GRAPH_PATTERN_NAMES,
    SCENARIO_NAMES,
    TOPOLOGY_NAMES,
    ScenarioScore,
    classify_graph_pattern,
    classify_scenario,
    classify_topology,
)
from repro.graphs.compose import challenge, overlay, sequence
from repro.graphs.ddos import (
    DDOS_COMPONENTS,
    BotnetRoles,
    backscatter,
    botnet_clients,
    command_and_control,
    ddos_attack,
    full_ddos,
)
# NOTE: the ``defense`` *function* is re-exported as ``defense_pattern`` so the
# ``repro.graphs.defense`` submodule stays importable by its natural name.
from repro.graphs.defense import DEFENSE_CONCEPTS, deterrence, full_posture, security
from repro.graphs.defense import defense as defense_pattern
from repro.graphs.metrics import (
    TrafficStats,
    degree_histogram,
    diagonal_fraction,
    power_law_slope,
    reciprocity,
    summarize,
    supernodes,
)
from repro.graphs.noise import background_noise, with_noise
from repro.graphs.patterns import (
    PATTERN_GENERATORS,
    bipartite,
    clique,
    grid_dims,
    mesh,
    ring,
    self_loops,
    star,
    toroidal_mesh,
    tree,
    triangle,
)
from repro.graphs.topologies import (
    TOPOLOGY_GENERATORS,
    external_supernode,
    internal_supernode,
    isolated_links,
    single_links,
    template_matrix,
)

__all__ = [
    # Fig. 10
    "star", "clique", "bipartite", "tree", "ring", "mesh", "toroidal_mesh",
    "self_loops", "triangle", "grid_dims", "PATTERN_GENERATORS",
    # Fig. 6
    "isolated_links", "single_links", "internal_supernode", "external_supernode",
    "template_matrix", "TOPOLOGY_GENERATORS",
    # Fig. 7
    "planning", "staging", "infiltration", "lateral_movement", "full_attack",
    "ATTACK_STAGES",
    # Fig. 8
    "security", "defense_pattern", "deterrence", "full_posture", "DEFENSE_CONCEPTS",
    # Fig. 9
    "command_and_control", "botnet_clients", "ddos_attack", "backscatter",
    "full_ddos", "BotnetRoles", "DDOS_COMPONENTS",
    # composition / noise
    "overlay", "sequence", "challenge", "background_noise", "with_noise",
    # metrics
    "TrafficStats", "summarize", "reciprocity", "diagonal_fraction",
    "supernodes", "degree_histogram", "power_law_slope",
    # classification
    "classify_graph_pattern", "classify_topology", "classify_scenario",
    "ScenarioScore", "GRAPH_PATTERN_NAMES", "TOPOLOGY_NAMES", "SCENARIO_NAMES",
]
