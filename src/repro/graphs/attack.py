"""Notional cyber-attack stages (paper Fig. 7).

Four stages of a generic attack, each expressed as *where the traffic lives*
relative to the blue/grey/red space partition:

1. **planning** — adversary-internal coordination, entirely in red space,
2. **staging** — infrastructure set-up in greyspace (adversary → grey, and
   grey-internal transfers),
3. **infiltration** — crossing the border from grey space into blue space,
4. **lateral movement** — spread inside blue space once a foothold exists.

Every generator works on any label set with at least one endpoint per space it
uses, and colours the grid by the space convention so students see the stage
*move* from red space toward blue space across the four figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.labels import default_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _resolve_index, _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = [
    "planning",
    "staging",
    "infiltration",
    "lateral_movement",
    "full_attack",
    "ATTACK_STAGES",
]


def _spaces(labels: Sequence[str]) -> tuple[SpaceMap, np.ndarray, np.ndarray, np.ndarray]:
    sm = SpaceMap.infer(labels)
    return (
        sm,
        sm.indices(NetworkSpace.BLUE),
        sm.indices(NetworkSpace.GREY),
        sm.indices(NetworkSpace.RED),
    )


def _require(space_name: str, idx: np.ndarray, minimum: int = 1) -> None:
    if idx.size < minimum:
        raise ShapeError(
            f"attack stage needs at least {minimum} {space_name}-space endpoint(s), "
            f"found {idx.size}"
        )


@register_scenario(
    family="attack", tags=("fig7", "kill_chain"), display="Planning",
    min_n=5, bounds={"packets": (1, None)},
)
def planning(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Stage 1 — coordination among adversary hosts, entirely in red space.

    Every adversary pair exchanges traffic; nothing touches grey or blue
    space.  The defender sees *nothing* on their own network — the pedagogical
    point of Fig. 7a.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    _, _, _, red = _spaces(labels)
    _require("red", red, 2)
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(red, red)] = packets
    arr[red, red] = 0  # pairwise coordination, no self traffic
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="attack", tags=("fig7", "kill_chain"), display="Staging",
    min_n=3, bounds={"packets": (1, None)},
)
def staging(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Stage 2 — staging infrastructure in greyspace (Fig. 7b).

    Each adversary pushes tooling to the grey endpoints (red → grey), and the
    grey endpoints replicate among themselves (grey ↔ grey).
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    _, _, grey, red = _spaces(labels)
    _require("grey", grey, 1)
    _require("red", red, 1)
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(red, grey)] = packets
    if grey.size > 1:
        block = np.full((grey.size, grey.size), packets, dtype=np.int64)
        np.fill_diagonal(block, 0)
        arr[np.ix_(grey, grey)] = block
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="attack", tags=("fig7", "kill_chain"), display="Infiltration",
    min_n=3, bounds={"packets": (1, None)},
)
def infiltration(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Stage 3 — crossing the grey/blue border (Fig. 7c).

    Staged grey endpoints probe and enter blue space; traffic sits exactly on
    the border blocks (grey → blue), the first moment the defender can see it.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    _, blue, grey, _ = _spaces(labels)
    _require("blue", blue, 1)
    _require("grey", grey, 1)
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(grey, blue)] = packets
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="attack", tags=("fig7", "kill_chain"), display="Lateral movement",
    min_n=4, bounds={"packets": (1, None)},
)
def lateral_movement(
    n: int = 10,
    *,
    packets: int = 1,
    foothold: int | str | None = None,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Stage 4 — spread inside blue space from a foothold (Fig. 7d).

    The compromised blue endpoint reaches out to every other blue endpoint
    (foothold → blue row), which then probe each other onward — traffic is
    entirely inside the blue block, the hardest stage to distinguish from
    legitimate internal load.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    _, blue, _, _ = _spaces(labels)
    _require("blue", blue, 2)
    if foothold is None:
        foot = int(blue[0])
    else:
        foot = _resolve_index(labels, foothold, "foothold")
    if foot not in set(blue.tolist()):
        raise ShapeError(f"foothold {labels[foot]!r} must be a blue-space endpoint")
    arr = np.zeros((n, n), dtype=np.int64)
    others = [j for j in blue.tolist() if j != foot]
    arr[foot, others] = packets
    # onward probing: each newly reached endpoint tries its successor
    for a, b in zip(others, others[1:]):
        arr[a, b] = packets
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="attack", tags=("fig7", "composite"), display="Full attack campaign",
    min_n=5, bounds={"packets": (1, None)},
)
def full_attack(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """All four stages overlaid — the "combined together" exercise the paper
    suggests once students know the individual signatures.

    Composition goes through :func:`repro.graphs.compose.overlay`, so very
    large label sets benefit from the parallel sparse engine when
    :func:`repro.runtime.configure` has enabled workers.
    """
    from repro.graphs.compose import overlay

    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    return overlay(
        builder(n, packets=packets, labels=labels)
        for builder in (planning, staging, infiltration, lateral_movement)
    )


#: Fig. 7 stages in kill-chain order.
ATTACK_STAGES = {
    "planning": planning,
    "staging": staging,
    "infiltration": infiltration,
    "lateral_movement": lateral_movement,
}
