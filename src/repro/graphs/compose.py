"""Pattern composition: the "combine the stages together" exercises.

The attack, defense and DDoS modules all end the same way in the paper: "after
understanding these individual examples they could all be combined together or
have background noise added to give a student even more of a challenge."
:func:`overlay` and :func:`challenge` are those two constructions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs.noise import with_noise

__all__ = ["overlay", "sequence", "challenge"]


def overlay(matrices: Iterable[TrafficMatrix]) -> TrafficMatrix:
    """Sum a collection of same-labelled patterns into one combined matrix.

    Packet counts add; colours keep the highest-priority code per cell
    (red > blue > grey), so adversarial annotation survives composition.
    """
    matrices = list(matrices)
    if not matrices:
        raise ShapeError("overlay needs at least one matrix")
    total = matrices[0].copy()
    for m in matrices[1:]:
        total = total + m
    return total


def sequence(
    stage_builders: Sequence[Callable[..., TrafficMatrix]],
    *,
    n: int = 10,
    cumulative: bool = False,
    **kwargs,
) -> list[TrafficMatrix]:
    """Materialise an ordered stage list (e.g. the four attack stages).

    With ``cumulative=True`` each element also contains all earlier stages —
    the "watch the attack unfold" presentation.
    """
    stages = [builder(n, **kwargs) for builder in stage_builders]
    if not cumulative:
        return stages
    out: list[TrafficMatrix] = []
    for i, _ in enumerate(stages):
        out.append(overlay(stages[: i + 1]))
    return out


def challenge(
    pattern: TrafficMatrix,
    *,
    noise_density: float = 0.12,
    max_noise_packets: int = 2,
    seed: int = 0,
) -> TrafficMatrix:
    """A planted pattern hidden in background noise, reproducibly.

    The pattern's own cells are never overwritten, so the intended signature
    is still present verbatim — only surrounded by chatter.
    """
    return with_noise(
        pattern,
        density=noise_density,
        max_packets=max_noise_packets,
        seed=seed,
        preserve_pattern=True,
    )
