"""Pattern composition: the "combine the stages together" exercises.

The attack, defense and DDoS modules all end the same way in the paper: "after
understanding these individual examples they could all be combined together or
have background noise added to give a student even more of a challenge."
:func:`overlay` and :func:`challenge` are those two constructions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs.noise import with_noise
from repro.runtime.config import parallel_config

__all__ = ["overlay", "sequence", "challenge"]


def overlay(matrices: Iterable[TrafficMatrix]) -> TrafficMatrix:
    """Sum a collection of same-labelled patterns into one combined matrix.

    Packet counts add; colours keep the highest-priority code per cell
    (red > blue > grey), so adversarial annotation survives composition.

    Classroom-sized matrices combine densely.  When the runtime has parallel
    workers configured and the stack is large **and sparse**, the packet
    grids are summed on the sparse engine through the expression layer: one
    accumulator assignment (``total(accum=PLUS) << union_all(rest)``) whose
    fused n-ary union runs a single row-blocked concatenate + coalesce
    instead of a chain of pairwise unions.  Dense stacks always take the
    dense path: a CSR round trip loses to one vectorized add when most cells
    are occupied.
    """
    matrices = list(matrices)
    if not matrices:
        raise ShapeError(
            "overlay() received an empty collection; it needs at least one "
            "TrafficMatrix to combine"
        )
    first = matrices[0]
    total_nnz = sum(m.nnz() for m in matrices)
    total_cells = first.n * first.n * len(matrices)
    if (
        len(matrices) > 1
        and total_nnz * 8 <= total_cells  # sparse enough (< ~12% occupied)
        and parallel_config(total_nnz) is not None
    ):
        for m in matrices[1:]:
            first._check_compatible(m)
        from repro.assoc.expr import Mat, union_all
        from repro.assoc.semiring import PLUS

        total = Mat.from_csr(first.to_csr())
        total(accum=PLUS) << union_all([m.to_csr() for m in matrices[1:]])
        colors, extended = TrafficMatrix.overlay_style(matrices)
        return TrafficMatrix(
            total.to_dense(0),
            first.labels,
            colors,
            extended_colors=extended,
        )
    total = first.copy()
    for m in matrices[1:]:
        total = total + m
    return total


def sequence(
    stage_builders: Sequence[Callable[..., TrafficMatrix]],
    *,
    n: int = 10,
    cumulative: bool = False,
    **kwargs,
) -> list[TrafficMatrix]:
    """Materialise an ordered stage list (e.g. the four attack stages).

    With ``cumulative=True`` each element also contains all earlier stages —
    the "watch the attack unfold" presentation.
    """
    stages = [builder(n, **kwargs) for builder in stage_builders]
    if not cumulative:
        return stages
    out: list[TrafficMatrix] = []
    for i, _ in enumerate(stages):
        out.append(overlay(stages[: i + 1]))
    return out


def challenge(
    pattern: TrafficMatrix,
    *,
    noise_density: float = 0.12,
    max_noise_packets: int = 2,
    seed: int = 0,
) -> TrafficMatrix:
    """A planted pattern hidden in background noise, reproducibly.

    The pattern's own cells are never overwritten, so the intended signature
    is still present verbatim — only surrounded by chatter.
    """
    return with_noise(
        pattern,
        density=noise_density,
        max_packets=max_noise_packets,
        seed=seed,
        preserve_pattern=True,
    )
