"""Graph-theory traffic patterns (paper Fig. 10).

Each generator returns a :class:`~repro.core.TrafficMatrix` whose non-zero
pattern is the named graph, drawn on the default template labels so the same
warehouse floor displays star, clique, bipartite, tree, ring, mesh, toroidal
mesh, self-loop and triangle patterns — "the information that can be displayed
in Traffic Warehouse is not limited just to network communication".

Conventions shared by every generator:

* ``n`` — matrix size (defaults to the paper's 10×10),
* ``packets`` — packets per edge (defaults to 1; keep below 15 for display),
* ``mutual`` — emit both directions of each undirected edge (default True,
  matching how undirected graphs appear in an adjacency matrix),
* ``labels`` — optional axis labels (template labels by default).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _check_endpoints, _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = [
    "star",
    "clique",
    "bipartite",
    "tree",
    "ring",
    "mesh",
    "toroidal_mesh",
    "self_loops",
    "triangle",
    "grid_dims",
    "PATTERN_GENERATORS",
]


def _build(
    n: int,
    edges: list[tuple[int, int]],
    packets: int,
    mutual: bool,
    labels: Sequence[str] | None,
) -> TrafficMatrix:
    _validate_positive(n=n, packets=packets)
    _check_endpoints(n, "edge endpoint(s)", edges)
    arr = np.zeros((n, n), dtype=np.int64)
    for i, j in edges:
        arr[i, j] = packets
        if mutual and i != j:
            arr[j, i] = packets
    return TrafficMatrix(arr, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Star graph",
    # center's real range is 0..n-1 — n-dependent, so (like hub/foothold) it
    # declares no static bound; the body validates and the sampler special-cases
    bounds={"packets": (1, None)},
)
def star(
    n: int = 10,
    *,
    center: int = 0,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Star graph: the hub exchanges traffic with every other endpoint.

    On a traffic matrix this is a filled row and column through ``center`` —
    the visual signature of a client-server hub.
    """
    _validate_positive(n=n, packets=packets)
    if not 0 <= center < n:
        raise ShapeError(f"star center {center} outside 0..{n - 1}")
    edges = [(center, j) for j in range(n) if j != center]
    return _build(n, edges, packets, mutual, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Clique",
    bounds={"packets": (1, None)},
)
def clique(
    n: int = 10,
    *,
    members: Sequence[int] | None = None,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Clique: every member pair communicates in both directions.

    ``members`` restricts the clique to a vertex subset (default: everyone),
    producing the dense off-diagonal block of Fig. 10b.
    """
    verts = list(range(n)) if members is None else list(members)
    edges = [(i, j) for i in verts for j in verts if i != j]
    return _build(n, edges, packets, False, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Bipartite graph",
    min_n=2, bounds={"packets": (1, None)},
)
def bipartite(
    n: int = 10,
    *,
    left: Sequence[int] | None = None,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Complete bipartite graph between ``left`` and its complement.

    Default split is the first half vs the rest, giving the two solid
    off-diagonal blocks of Fig. 10c.
    """
    _validate_positive(n=n, packets=packets)
    left_set = set(range(n // 2)) if left is None else set(left)
    right = [j for j in range(n) if j not in left_set]
    if not left_set or not right:
        raise ShapeError("bipartite pattern needs both sides non-empty")
    edges = [(i, j) for i in sorted(left_set) for j in right]
    return _build(n, edges, packets, mutual, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Tree",
    bounds={"packets": (1, None), "branching": (1, None)},
)
def tree(
    n: int = 10,
    *,
    branching: int = 2,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Complete ``branching``-ary tree on ``n`` vertices (breadth-first layout).

    Vertex ``k``'s parent is ``(k - 1) // branching`` — the band-of-bands
    pattern of Fig. 10d.
    """
    _validate_positive(n=n, packets=packets)
    if branching < 1:
        raise ShapeError(f"tree branching factor must be >= 1, got {branching}")
    edges = [((k - 1) // branching, k) for k in range(1, n)]
    return _build(n, edges, packets, mutual, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Ring",
    min_n=3, bounds={"packets": (1, None)},
)
def ring(
    n: int = 10,
    *,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Ring: each endpoint talks to its successor (mod n) — the wrapped
    super/sub-diagonal of Fig. 10e."""
    _validate_positive(n=n, packets=packets)
    if n < 3:
        raise ShapeError(f"a ring needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _build(n, edges, packets, mutual, labels)


def grid_dims(n: int) -> tuple[int, int]:
    """Most-square ``rows × cols`` factorisation of *n* (rows <= cols).

    ``grid_dims(10) == (2, 5)`` — how a 10-endpoint mesh lays out.
    Prime ``n`` degenerates to a path (``1 × n``).
    """
    best = (1, n)
    for r in range(2, int(math.isqrt(n)) + 1):
        if n % r == 0:
            best = (r, n // r)
    return best


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Mesh",
    bounds={"packets": (1, None)},
)
def mesh(
    n: int = 10,
    *,
    dims: tuple[int, int] | None = None,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Mesh (grid) interconnect: 4-neighbour connectivity, no wraparound.

    Endpoints are laid out row-major on a ``rows × cols`` grid (Fig. 10f) —
    the banded matrix every HPC-interconnect course draws.
    """
    _validate_positive(n=n, packets=packets)
    rows, cols = grid_dims(n) if dims is None else dims
    if rows * cols != n:
        raise ShapeError(f"dims {rows}x{cols} do not cover {n} vertices")
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return _build(n, edges, packets, mutual, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Toroidal mesh",
    bounds={"packets": (1, None)},
)
def toroidal_mesh(
    n: int = 10,
    *,
    dims: tuple[int, int] | None = None,
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Toroidal mesh: the grid of :func:`mesh` with wraparound links (Fig. 10g)."""
    _validate_positive(n=n, packets=packets)
    rows, cols = grid_dims(n) if dims is None else dims
    if rows * cols != n:
        raise ShapeError(f"dims {rows}x{cols} do not cover {n} vertices")
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if cols > 1:
                edges.append((v, r * cols + (c + 1) % cols))
            if rows > 1:
                edges.append((v, ((r + 1) % rows) * cols + c))
    # wraparound on a 2-long axis duplicates the inner link; drop duplicates
    edges = sorted({(min(i, j), max(i, j)) for i, j in edges if i != j})
    return _build(n, edges, packets, mutual, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Self loop",
    bounds={"packets": (1, None)},
)
def self_loops(
    n: int = 10,
    *,
    packets: int = 1,
    vertices: Sequence[int] | None = None,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Self-loop pattern: endpoints sending to themselves — the pure diagonal
    of Fig. 10h (loopback traffic, or a host scanning itself)."""
    verts = range(n) if vertices is None else vertices
    edges = [(v, v) for v in verts]
    return _build(n, edges, packets, False, labels)


@register_scenario(
    family="pattern", tags=("fig10", "graph_theory"), display="Triangle",
    min_n=3, bounds={"packets": (1, None)},
)
def triangle(
    n: int = 10,
    *,
    vertices: tuple[int, int, int] = (0, 1, 2),
    packets: int = 1,
    mutual: bool = True,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """A single triangle among three endpoints (Fig. 10i) — the motif whose
    count GraphBLAS tutorials compute with ``plus.pair``."""
    _validate_positive(n=n, packets=packets)
    a, b, c = vertices
    if len({a, b, c}) != 3:
        raise ShapeError(f"triangle vertices must be distinct, got {vertices}")
    edges = [(a, b), (b, c), (c, a)]
    return _build(n, edges, packets, mutual, labels)


#: Generator registry in the order Fig. 10 presents the patterns.
PATTERN_GENERATORS = {
    "star": star,
    "clique": clique,
    "bipartite": bipartite,
    "tree": tree,
    "ring": ring,
    "mesh": mesh,
    "toroidal_mesh": toroidal_mesh,
    "self_loops": self_loops,
    "triangle": triangle,
}
