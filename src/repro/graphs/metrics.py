"""Traffic-matrix metrics in the style of the paper's analytic lineage.

The quantities here are the ones the multi-temporal traffic papers the
modules' hints point at (ref [50]) compute over hypersparse matrices: degree
(fan) distributions, reciprocity, supernode identification, and the power-law
slope of the degree distribution.  They also power the rule-based pattern
classifier and the ``AnalystPlayer`` bot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix

__all__ = [
    "TrafficStats",
    "summarize",
    "reciprocity",
    "diagonal_fraction",
    "supernodes",
    "degree_histogram",
    "power_law_slope",
]


@dataclass(frozen=True)
class TrafficStats:
    """One-matrix summary used by reports, the classifier, and bots."""

    n: int
    nnz: int
    total_packets: int
    density: float
    max_packets: int
    reciprocity: float
    diagonal_fraction: float
    max_out_fan: int
    max_in_fan: int
    active_sources: int
    active_destinations: int
    space_block_packets: dict[tuple[str, str], int]

    def dominant_block(self) -> tuple[str, str] | None:
        """The (source space, destination space) block carrying the most packets."""
        if not self.space_block_packets or self.total_packets == 0:
            return None
        return max(self.space_block_packets.items(), key=lambda kv: kv[1])[0]


def reciprocity(matrix: TrafficMatrix) -> float:
    """Fraction of off-diagonal links that are answered in reverse.

    1.0 for fully mutual patterns (clique, ring), 0.0 for one-way patterns
    (single links, DDoS flood) — a one-number mutual/one-way discriminator.

    Sparse formulation on the expression layer: a complement-masked select
    drops the diagonal (``P⟨¬I⟩``), and the mutual count is the masked
    pattern intersection ``(P ⊗ Pᵀ)⟨¬I⟩`` — the transpose folds onto the
    cached descriptor, and only stored links are ever touched.
    """
    from repro.assoc.expr import lazy
    from repro.assoc.semiring import PAIR
    from repro.assoc.sparse import CSRMatrix

    p = matrix.to_csr()
    eye = CSRMatrix.identity(matrix.n)
    links = lazy(p).select(eye, complement=True).nnz
    if links == 0:
        return 0.0
    mutual = (
        lazy(p).ewise(p.transpose(), PAIR, how="intersect").new(mask=eye, complement=True).nnz
    )
    return mutual / links


def diagonal_fraction(matrix: TrafficMatrix) -> float:
    """Fraction of non-zero cells sitting on the diagonal (self loops)."""
    nnz = matrix.nnz()
    if nnz == 0:
        return 0.0
    return int(np.count_nonzero(np.diag(matrix.packets))) / nnz


def supernodes(matrix: TrafficMatrix, *, min_fan: int | None = None) -> list[str]:
    """Endpoints whose total fan (distinct peers) reaches *min_fan*.

    Defaults to half the possible peers — the "one endpoint talks to
    everybody" signature of Fig. 6c/6d.  Fan counts distinct peers in either
    direction, excluding self.
    """
    from repro.assoc.expr import lazy
    from repro.assoc.semiring import MAX_MONOID
    from repro.assoc.sparse import CSRMatrix

    p = matrix.to_csr()
    eye = CSRMatrix.identity(matrix.n)
    # peer pattern = (P ∪ Pᵀ)⟨¬I⟩, fused: one union coalesce, diagonal
    # dropped pre-sort, transpose from the cached descriptor
    peers = lazy(p).ewise(p.transpose(), MAX_MONOID).new(mask=eye, complement=True)
    fan = peers.row_nnz()
    threshold = max(2, (matrix.n - 1) // 2) if min_fan is None else min_fan
    return [matrix.labels[i] for i in np.flatnonzero(fan >= threshold).tolist()]


def degree_histogram(matrix: TrafficMatrix, *, axis: str = "out") -> dict[int, int]:
    """``{fan value: endpoint count}`` histogram of out/in fan."""
    if axis == "out":
        fan = matrix.out_fan()
    elif axis == "in":
        fan = matrix.in_fan()
    else:
        raise ValueError(f"axis must be 'out' or 'in', got {axis!r}")
    values, counts = np.unique(fan, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def power_law_slope(histogram: dict[int, int]) -> float | None:
    """Least-squares slope of ``log(count)`` vs ``log(degree)``.

    Real network traffic famously shows heavy-tailed degree distributions
    (slope around -1 to -3); classroom patterns are nearly regular (slope
    undefined or near 0).  Returns ``None`` when fewer than two positive
    degrees exist, which makes "is this real-ish traffic?" a one-call check.
    """
    pts = [(d, c) for d, c in histogram.items() if d > 0 and c > 0]
    if len(pts) < 2:
        return None
    x = np.log(np.asarray([p[0] for p in pts], dtype=float))
    y = np.log(np.asarray([p[1] for p in pts], dtype=float))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def summarize(matrix: TrafficMatrix) -> TrafficStats:
    """Compute the full :class:`TrafficStats` summary for one matrix."""
    blocks = {
        (src.value, dst.value): count
        for (src, dst), count in matrix.space_traffic().items()
    }
    out_fan = matrix.out_fan()
    in_fan = matrix.in_fan()
    return TrafficStats(
        n=matrix.n,
        nnz=matrix.nnz(),
        total_packets=matrix.total_packets(),
        density=matrix.density(),
        max_packets=matrix.max_packets(),
        reciprocity=reciprocity(matrix),
        diagonal_fraction=diagonal_fraction(matrix),
        max_out_fan=int(out_fan.max()) if matrix.n else 0,
        max_in_fan=int(in_fan.max()) if matrix.n else 0,
        active_sources=int(np.count_nonzero(out_fan)),
        active_destinations=int(np.count_nonzero(in_fan)),
        space_block_packets=blocks,
    )
