"""Background-noise injection for challenge exercises.

The paper repeatedly suggests that once students know the individual
signatures, patterns "could all be combined together or potentially mixed in
with random background noise for a student to analyze".  These helpers make
that exercise reproducible: all randomness flows through a caller-supplied
seed, so a generated challenge module is identical on every machine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.labels import default_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = ["background_noise", "with_noise"]


@register_scenario(
    family="noise", tags=("challenge",), display="Background noise",
    bounds={"density": (0.0, 1.0), "max_packets": (1, None)},
)
def background_noise(
    n: int = 10,
    *,
    density: float = 0.1,
    max_packets: int = 2,
    seed: int | np.random.Generator = 0,
    labels: Sequence[str] | None = None,
    src_space: NetworkSpace | None = None,
    dst_space: NetworkSpace | None = None,
    allow_self_loops: bool = False,
) -> TrafficMatrix:
    """Random low-rate chatter over a fraction *density* of the cells.

    Packet counts are uniform in ``1..max_packets``, deliberately light so the
    planted pattern remains the dominant visual signal.  ``src_space`` /
    ``dst_space`` restrict noise to a space block (e.g. benign grey-space
    chatter only).  Determinism: an integer *seed* always produces the same
    matrix.
    """
    _validate_positive(n=n, max_packets=max_packets)
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"noise density must be in [0, 1], got {density}")
    labels = default_labels(n) if labels is None else labels
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    sm = SpaceMap.infer(labels)
    rows = sm.indices(src_space) if src_space else np.arange(n, dtype=np.intp)
    cols = sm.indices(dst_space) if dst_space else np.arange(n, dtype=np.intp)
    arr = np.zeros((n, n), dtype=np.int64)
    if rows.size and cols.size:
        mask = rng.random((rows.size, cols.size)) < density
        counts = rng.integers(1, max_packets + 1, size=(rows.size, cols.size))
        block = np.where(mask, counts, 0)
        arr[np.ix_(rows, cols)] = block
    if not allow_self_loops:
        np.fill_diagonal(arr, 0)
    return TrafficMatrix(arr, labels)


def with_noise(
    matrix: TrafficMatrix,
    *,
    density: float = 0.1,
    max_packets: int = 2,
    seed: int | np.random.Generator = 0,
    preserve_pattern: bool = True,
) -> TrafficMatrix:
    """Overlay background noise on an existing pattern.

    With ``preserve_pattern`` (default) noise never lands on cells the pattern
    already uses, so the planted signature stays pixel-identical — the variant
    an auto-graded exercise wants.  Without it, noise adds on top.
    """
    noise = background_noise(
        matrix.n,
        density=density,
        max_packets=max_packets,
        seed=seed,
        labels=matrix.labels,
    )
    if preserve_pattern:
        cleaned = np.where(matrix.packets > 0, 0, noise.packets)
        noise = TrafficMatrix(cleaned, matrix.labels)
    return matrix + noise
