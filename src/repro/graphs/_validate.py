"""Shared argument validation for every traffic generator.

Before this helper existed, generators disagreed on degenerate inputs:
``n=0`` raised in some modules, produced empty label sets in others;
``packets=0`` silently generated an all-zero "pattern".  Every generator now
calls :func:`validate_positive` first, so the contract is uniform: sizes and
packet counts must be strictly positive, and violations raise
:class:`~repro.errors.ShapeError` with the offending argument named.
"""

from __future__ import annotations

from repro.errors import ShapeError

__all__ = ["_validate_positive"]


def _validate_positive(n: int | None = None, packets: int | None = None, **counts: int) -> None:
    """Require a positive matrix size and positive packet count(s).

    ``n`` is the endpoint count; ``packets`` the primary per-edge packet
    count.  Extra keyword arguments name secondary counts with their
    generator-local parameter name (``attack_packets``, ``max_packets``,
    ``provocation_packets``, …), so error messages match the caller's
    signature.
    """
    if n is not None:
        counts = {"n": n, **counts}
    if packets is not None:
        counts["packets"] = packets
    for name, value in counts.items():
        if int(value) < 1:
            noun = "size" if name == "n" else "count"
            raise ShapeError(f"{name} must be a positive {noun}, got {value}")
