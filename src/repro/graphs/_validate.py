"""Shared argument validation for every traffic generator.

Before this helper existed, generators disagreed on degenerate inputs:
``n=0`` raised in some modules, produced empty label sets in others;
``packets=0`` silently generated an all-zero "pattern".  Every generator now
calls :func:`validate_positive` first, so the contract is uniform: sizes and
packet counts must be strictly positive, and violations raise
:class:`~repro.errors.ShapeError` with the offending argument named.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ShapeError

__all__ = ["_validate_positive", "_check_endpoints", "_resolve_index"]


def _validate_positive(n: int | None = None, packets: int | None = None, **counts: int) -> None:
    """Require a positive matrix size and positive packet count(s).

    ``n`` is the endpoint count; ``packets`` the primary per-edge packet
    count.  Extra keyword arguments name secondary counts with their
    generator-local parameter name (``attack_packets``, ``max_packets``,
    ``provocation_packets``, …), so error messages match the caller's
    signature.
    """
    if n is not None:
        counts = {"n": n, **counts}
    if packets is not None:
        counts["packets"] = packets
    for name, value in counts.items():
        if int(value) < 1:
            noun = "size" if name == "n" else "count"
            raise ShapeError(f"{name} must be a positive {noun}, got {value}")


def _check_endpoints(n: int, what: str, pairs: Sequence[tuple[int, int]]) -> None:
    """Reject endpoint indices outside the matrix with a :class:`ShapeError`.

    Without this, out-of-range pairs surface as raw ``IndexError`` from the
    NumPy write — the schema/body disagreement the spec-space fuzzer flags.
    """
    bad = [(i, j) for i, j in pairs if not (0 <= i < n and 0 <= j < n)]
    if bad:
        raise ShapeError(f"{what} {bad[:3]} outside 0..{n - 1} for an {n}x{n} matrix")


def _resolve_index(labels: Sequence[str], value: int | str, what: str) -> int:
    """An endpoint argument (label string or index) as a validated index.

    Used by every generator that takes a named endpoint (``hub``,
    ``foothold``): unknown labels and out-of-range indices raise
    :class:`ShapeError` with the parameter named, never ``ValueError`` /
    ``IndexError`` from the lookup itself.
    """
    if isinstance(value, str):
        try:
            return list(labels).index(value.upper())
        except ValueError:
            raise ShapeError(
                f"{what} label {value!r} not found in labels {list(labels)}"
            ) from None
    idx = int(value)
    if not 0 <= idx < len(labels):
        raise ShapeError(f"{what} index {idx} outside 0..{len(labels) - 1}")
    return idx
