"""Basic traffic topologies (paper Fig. 6).

The four patterns of the basic-topologies learning module, defined in the
vocabulary of the multi-temporal traffic analyses the module's hint points to
(Kepner et al., HPEC 2020 — ref [50]):

* **isolated links** — source/destination pairs that exchange traffic with
  each other and nobody else (both endpoints have fan 1, mutual),
* **single links** — one-directional, one-off connections between otherwise
  silent endpoints,
* **internal supernode** — one endpoint inside blue space that every other
  internal endpoint talks to (a busy file server),
* **external supernode** — one endpoint outside blue space that every internal
  endpoint talks to (a popular web service — or an exfiltration sink).

All generators default to the paper's 10×10 template labels and colour the
grid with the blue/grey/red space convention, the "additional color coding"
visible in Fig. 6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.labels import default_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _check_endpoints, _resolve_index, _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = [
    "isolated_links",
    "single_links",
    "internal_supernode",
    "external_supernode",
    "template_matrix",
    "TOPOLOGY_GENERATORS",
]


def _space_colored(matrix: TrafficMatrix) -> TrafficMatrix:
    return matrix.with_space_colors()


@register_scenario(
    family="topology", tags=("fig6",), display="Isolated links",
    bounds={"packets": (1, None)},
)
def isolated_links(
    n: int = 10,
    *,
    pairs: Sequence[tuple[int, int]] | None = None,
    packets: int = 2,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Disjoint mutual pairs: each endpoint appears in exactly one link.

    The default pairing mirrors the paper's 10×10 template: endpoint ``i``
    pairs with endpoint ``n-1-i`` (WS1↔ADV4, WS2↔ADV3, ...), producing the
    anti-diagonal signature of Fig. 6a.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    if pairs is None:
        pairs = [(i, n - 1 - i) for i in range(n // 2)]
    _check_endpoints(n, "isolated link pair(s)", pairs)
    used: set[int] = set()
    arr = np.zeros((n, n), dtype=np.int64)
    for i, j in pairs:
        if i == j:
            raise ShapeError(f"isolated link ({i}, {j}) is a self loop, not a link")
        if i in used or j in used:
            raise ShapeError(f"endpoint in pair ({i}, {j}) already used; links must be disjoint")
        used.update((i, j))
        arr[i, j] = packets
        arr[j, i] = packets
    return _space_colored(TrafficMatrix(arr, labels))


@register_scenario(
    family="topology", tags=("fig6",), display="Single links",
    bounds={"packets": (1, None)},
)
def single_links(
    n: int = 10,
    *,
    links: Sequence[tuple[int, int]] | None = None,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """One-directional one-off links: a packet sent, never answered (Fig. 6b).

    Default links step across the matrix (``i → i+1`` for even ``i``), keeping
    every endpoint in at most one link so the contrast with isolated links is
    exactly *directionality*.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    if links is None:
        links = [(i, i + 1) for i in range(0, n - 1, 2)]
    _check_endpoints(n, "single link(s)", links)
    arr = np.zeros((n, n), dtype=np.int64)
    for i, j in links:
        if i == j:
            raise ShapeError(f"single link ({i}, {j}) is a self loop")
        arr[i, j] = packets
    return _space_colored(TrafficMatrix(arr, labels))


@register_scenario(
    family="topology", tags=("fig6",), display="Internal supernode",
    min_n=4, bounds={"packets": (1, None)},
)
def internal_supernode(
    n: int = 10,
    *,
    hub: int | str | None = None,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """One blue endpoint exchanging traffic with every other blue endpoint.

    Defaults to the first server label (``SRV1`` on templates) as the hub —
    the filled row-and-column *inside the blue block* of Fig. 6c.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    sm = SpaceMap.infer(labels)
    blue = sm.indices(NetworkSpace.BLUE)
    if blue.size < 2:
        raise ShapeError("internal supernode needs at least 2 blue-space endpoints")
    if hub is None:
        srv = [i for i in blue.tolist() if labels[i].startswith("SRV")]
        hub_idx = srv[0] if srv else int(blue[0])
    else:
        hub_idx = _resolve_index(labels, hub, "hub")
    if hub_idx not in set(blue.tolist()):
        raise ShapeError(f"hub {labels[hub_idx]!r} is not in blue space")
    arr = np.zeros((n, n), dtype=np.int64)
    for j in blue.tolist():
        if j != hub_idx:
            arr[hub_idx, j] = packets
            arr[j, hub_idx] = packets
    return _space_colored(TrafficMatrix(arr, labels))


@register_scenario(
    family="topology", tags=("fig6",), display="External supernode",
    min_n=2, bounds={"packets": (1, None)},
)
def external_supernode(
    n: int = 10,
    *,
    hub: int | str | None = None,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """One endpoint outside blue space that every blue endpoint talks to.

    Defaults to the first external (grey-space) label — the filled
    row-and-column *crossing the blue/grey border* of Fig. 6d.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    sm = SpaceMap.infer(labels)
    blue = sm.indices(NetworkSpace.BLUE)
    outside = [i for i in range(n) if i not in set(blue.tolist())]
    if blue.size == 0 or not outside:
        raise ShapeError("external supernode needs blue and non-blue endpoints")
    if hub is None:
        grey = sm.indices(NetworkSpace.GREY)
        hub_idx = int(grey[0]) if grey.size else outside[0]
    else:
        hub_idx = _resolve_index(labels, hub, "hub")
    if hub_idx in set(blue.tolist()):
        raise ShapeError(f"hub {labels[hub_idx]!r} must be outside blue space")
    arr = np.zeros((n, n), dtype=np.int64)
    for i in blue.tolist():
        arr[i, hub_idx] = packets
        arr[hub_idx, i] = packets
    return _space_colored(TrafficMatrix(arr, labels))


@register_scenario(
    family="topology", tags=("template",), display="Template matrix",
    min_n=2, n_multiple_of=2,
)
def template_matrix(n: int = 10, *, labels: Sequence[str] | None = None) -> TrafficMatrix:
    """The exact matrix of the paper's 10×10 template listing (any even n).

    Self loops of 1 packet on the diagonal plus isolated links of 2 packets on
    the anti-diagonal, coloured with the template's block colouring: the
    blue-rows × red-columns block red, the red-rows × blue-columns block blue.
    """
    _validate_positive(n=n)
    if n % 2:
        raise ShapeError(f"template matrix layout needs an even size, got {n}")
    labels = default_labels(n) if labels is None else labels
    arr = np.eye(n, dtype=np.int64) + 2 * np.fliplr(np.eye(n, dtype=np.int64))
    sm = SpaceMap.infer(labels)
    is_blue = np.asarray([s is NetworkSpace.BLUE for s in sm.spaces])
    is_red = np.asarray([s is NetworkSpace.RED for s in sm.spaces])
    colors = np.zeros((n, n), dtype=np.int8)
    colors[np.ix_(is_blue, is_red)] = 2
    colors[np.ix_(is_red, is_blue)] = 1
    return TrafficMatrix(arr, labels, colors)


#: Fig. 6 generators in presentation order.
TOPOLOGY_GENERATORS = {
    "isolated_links": isolated_links,
    "single_links": single_links,
    "internal_supernode": internal_supernode,
    "external_supernode": external_supernode,
}
