"""Security, defense, and deterrence traffic patterns (paper Fig. 8).

The paper teaches the "key concept in the protection of any domain": the
distinction between **(walls-in) security**, **(walls-out) defense**, and
**deterrence** (Kepner et al., *Zero Botnets* — ref [52]).  Each maps to a
characteristic region of the traffic matrix:

* *security* — all activity within one's own blue space (monitoring and
  hardening your own systems),
* *defense* — stepping outside: blue sensors observing grey space, where
  adversary staging traffic is visible *before* it reaches the border,
* *deterrence* — credible response activity in adversary (red) space arising
  after unacceptable adversary actions inside blue space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.labels import default_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = ["security", "defense", "deterrence", "full_posture", "DEFENSE_CONCEPTS"]


def _spaces(labels: Sequence[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    sm = SpaceMap.infer(labels)
    return (
        sm.indices(NetworkSpace.BLUE),
        sm.indices(NetworkSpace.GREY),
        sm.indices(NetworkSpace.RED),
    )


@register_scenario(
    family="defense", tags=("fig8",), display="Security (walls-in)",
    min_n=4, bounds={"packets": (1, None)},
)
def security(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Walls-in security: traffic entirely inside the blue block (Fig. 8a).

    Every blue endpoint checks in with every other blue endpoint — patching,
    scanning, log shipping — "communicating with their own systems and
    ensuring no adversarial activity".
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    blue, _, _ = _spaces(labels)
    if blue.size < 2:
        raise ShapeError("security pattern needs at least 2 blue-space endpoints")
    arr = np.zeros((n, n), dtype=np.int64)
    block = np.full((blue.size, blue.size), packets, dtype=np.int64)
    np.fill_diagonal(block, 0)
    arr[np.ix_(blue, blue)] = block
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    "defense_pattern", family="defense", tags=("fig8",), display="Defense (walls-out)",
    min_n=3, bounds={"packets": (1, None)},
)
def defense(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Walls-out defense: observation posts in grey space (Fig. 8b).

    Blue endpoints exchange telemetry with grey-space community sensors
    (blue ↔ grey), and those sensors expose adversary staging traffic
    (red → grey) — threats identified "before they have the chance to enter"
    blue space.
    """
    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    blue, grey, red = _spaces(labels)
    if blue.size < 1 or grey.size < 1:
        raise ShapeError("defense pattern needs blue and grey endpoints")
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(blue, grey)] = packets
    arr[np.ix_(grey, blue)] = packets
    if red.size:
        arr[np.ix_(red, grey)] = packets
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="defense", tags=("fig8",), display="Deterrence",
    min_n=2, bounds={"packets": (1, None), "provocation_packets": (1, None)},
)
def deterrence(
    n: int = 10,
    *,
    packets: int = 1,
    provocation_packets: int = 2,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """Deterrence: credible response activity in red space (Fig. 8c).

    The provocation — adversary action inside blue space (red → blue, heavier
    ``provocation_packets``) — is answered by visible blue activity *in
    adversary space* (blue → red), plus the adversary-internal churn it
    causes (red ↔ red).
    """
    _validate_positive(n=n, packets=packets, provocation_packets=provocation_packets)
    labels = default_labels(n) if labels is None else labels
    blue, _, red = _spaces(labels)
    if blue.size < 1 or red.size < 1:
        raise ShapeError("deterrence pattern needs blue and red endpoints")
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(red, blue)] = provocation_packets
    arr[np.ix_(blue, red)] = packets
    if red.size > 1:
        block = np.full((red.size, red.size), packets, dtype=np.int64)
        np.fill_diagonal(block, 0)
        arr[np.ix_(red, red)] = block
    return TrafficMatrix(arr, labels).with_space_colors()


@register_scenario(
    family="defense", tags=("fig8", "composite"), display="Full protection posture",
    min_n=4, bounds={"packets": (1, None)},
)
def full_posture(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
) -> TrafficMatrix:
    """All three protection concepts overlaid — a defender doing everything.

    The combined matrix shows security, defense, and deterrence traffic at
    once, mirroring the paper's "combine the stages together" exercises for
    the attack and DDoS modules.  Routed through
    :func:`repro.graphs.compose.overlay`, so huge label sets pick up the
    parallel sparse engine when :func:`repro.runtime.configure` enables it.
    """
    from repro.graphs.compose import overlay

    _validate_positive(n=n, packets=packets)
    labels = default_labels(n) if labels is None else labels
    return overlay(
        builder(n, packets=packets, labels=labels)
        for builder in (security, defense, deterrence)
    )


#: Fig. 8 concepts in presentation order.
DEFENSE_CONCEPTS = {
    "security": security,
    "defense": defense,
    "deterrence": deterrence,
}
