"""Distributed denial-of-service components (paper Fig. 9).

The DDoS learning module decomposes "amongst the most prevalent cyber attacks"
into four traffic-matrix signatures:

1. **command and control** — C2 servers coordinating in red space,
2. **botnet clients** — identical C2 → client tasking fan-out,
3. **attack** — the client swarm flooding the victim servers,
4. **backscatter** — the victims' replies to the illegitimate traffic, which
   is exactly the *transpose* of the attack pattern (a property the tests and
   the Fig. 9 bench verify).

Role assignment is parameterised; the defaults fit the paper's 10×10 template
(C2 = ``ADV1, ADV2``; clients = ``ADV3, ADV4, EXT1, EXT2``; victim =
``SRV1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.labels import default_labels, label_indices
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError
from repro.graphs._validate import _validate_positive
from repro.scenarios.registry import register_scenario

__all__ = [
    "BotnetRoles",
    "command_and_control",
    "botnet_clients",
    "ddos_attack",
    "backscatter",
    "full_ddos",
    "DDOS_COMPONENTS",
]


@dataclass(frozen=True)
class BotnetRoles:
    """Which endpoints play which part in the DDoS scenario.

    ``from_labels`` derives sensible defaults from the space partition: the
    first half of red space is C2, the rest of red space plus all of grey
    space are bot clients, and blue servers (``SRV*``, else all blue) are the
    victims.
    """

    c2: tuple[int, ...]
    clients: tuple[int, ...]
    victims: tuple[int, ...]
    labels: tuple[str, ...] = field(default=())

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "BotnetRoles":
        labels = tuple(labels)
        sm = SpaceMap.infer(labels)
        red = sm.indices(NetworkSpace.RED).tolist()
        grey = sm.indices(NetworkSpace.GREY).tolist()
        blue = sm.indices(NetworkSpace.BLUE).tolist()
        if len(red) < 2:
            raise ShapeError("a botnet needs at least 2 red-space endpoints (C2 + client)")
        if not blue:
            raise ShapeError("a DDoS needs at least 1 blue-space victim")
        n_c2 = max(1, len(red) // 2)
        c2 = tuple(red[:n_c2])
        clients = tuple(red[n_c2:]) + tuple(grey)
        servers = [i for i in blue if labels[i].startswith("SRV")]
        victims = tuple(servers) if servers else tuple(blue)
        if not clients:
            raise ShapeError("no endpoints left to act as botnet clients")
        return cls(c2, clients, victims, labels)

    @classmethod
    def from_names(
        cls,
        labels: Sequence[str],
        c2: Sequence[str],
        clients: Sequence[str],
        victims: Sequence[str],
    ) -> "BotnetRoles":
        labels = tuple(labels)
        roles = cls(
            tuple(label_indices(labels, c2)),
            tuple(label_indices(labels, clients)),
            tuple(label_indices(labels, victims)),
            labels,
        )
        overlap = set(roles.c2) & set(roles.clients) | set(roles.clients) & set(roles.victims)
        if overlap:
            raise ShapeError(f"endpoints {sorted(overlap)} assigned to multiple botnet roles")
        return roles


def _roles(n: int, labels: Sequence[str] | None, roles: BotnetRoles | None) -> tuple[tuple[str, ...], BotnetRoles]:
    lbls = tuple(default_labels(n) if labels is None else labels)
    return lbls, (roles if roles is not None else BotnetRoles.from_labels(lbls))


@register_scenario(
    family="ddos", tags=("fig9", "botnet"), display="Command and control (C2)",
    min_n=5, bounds={"packets": (1, None)},
)
def command_and_control(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
    roles: BotnetRoles | None = None,
) -> TrafficMatrix:
    """C2 servers coordinating with each other in red space (Fig. 9a)."""
    _validate_positive(n=n, packets=packets)
    lbls, r = _roles(n, labels, roles)
    arr = np.zeros((n, n), dtype=np.int64)
    c2 = np.asarray(r.c2, dtype=np.intp)
    if c2.size > 1:
        block = np.full((c2.size, c2.size), packets, dtype=np.int64)
        np.fill_diagonal(block, 0)
        arr[np.ix_(c2, c2)] = block
    else:
        arr[c2[0], c2[0]] = packets  # a lone C2 shows as self-maintenance traffic
    return TrafficMatrix(arr, lbls).with_space_colors()


@register_scenario(
    family="ddos", tags=("fig9", "botnet"), display="Botnet clients",
    min_n=5, bounds={"packets": (1, None)},
)
def botnet_clients(
    n: int = 10,
    *,
    packets: int = 1,
    labels: Sequence[str] | None = None,
    roles: BotnetRoles | None = None,
) -> TrafficMatrix:
    """Identical C2 → client tasking (Fig. 9b).

    "The communication from the C2 servers to the individual clients can be
    represented by identical communications" — every (C2, client) cell holds
    the same count, a uniformity the classifier keys on.
    """
    _validate_positive(n=n, packets=packets)
    lbls, r = _roles(n, labels, roles)
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(np.asarray(r.c2, dtype=np.intp), np.asarray(r.clients, dtype=np.intp))] = packets
    return TrafficMatrix(arr, lbls).with_space_colors()


@register_scenario(
    family="ddos", tags=("fig9", "botnet"), display="DDoS attack",
    min_n=5, bounds={"packets": (1, None)},
)
def ddos_attack(
    n: int = 10,
    *,
    packets: int = 9,
    labels: Sequence[str] | None = None,
    roles: BotnetRoles | None = None,
) -> TrafficMatrix:
    """The flood: every client slams the victim servers (Fig. 9c).

    Defaults to 9 packets per client-victim pair — heavy enough to visibly
    dominate the matrix while staying under the 15-packet display guidance.
    """
    _validate_positive(n=n, packets=packets)
    lbls, r = _roles(n, labels, roles)
    arr = np.zeros((n, n), dtype=np.int64)
    arr[np.ix_(np.asarray(r.clients, dtype=np.intp), np.asarray(r.victims, dtype=np.intp))] = packets
    return TrafficMatrix(arr, lbls).with_space_colors()


@register_scenario(
    family="ddos", tags=("fig9", "botnet"), display="Backscatter",
    min_n=5, bounds={"packets": (1, None), "attack_packets": (1, None)},
)
def backscatter(
    n: int = 10,
    *,
    packets: int = 1,
    attack_packets: int = 9,
    labels: Sequence[str] | None = None,
    roles: BotnetRoles | None = None,
) -> TrafficMatrix:
    """Victim replies to the illegitimate traffic (Fig. 9d).

    Structurally the transpose of :func:`ddos_attack` (with reply-rate
    ``packets``): ``backscatter(...).packets`` has the same non-zero pattern
    as ``ddos_attack(...).transpose().packets``.
    """
    _validate_positive(n=n, packets=packets, attack_packets=attack_packets)
    lbls, r = _roles(n, labels, roles)
    attack = ddos_attack(n, packets=attack_packets, labels=lbls, roles=r)
    replied = attack.transpose()
    scaled = np.where(replied.packets > 0, packets, 0).astype(np.int64)
    return TrafficMatrix(scaled, lbls).with_space_colors()


@register_scenario(
    family="ddos", tags=("fig9", "composite"), display="Full DDoS",
    min_n=5,
)
def full_ddos(
    n: int = 10,
    *,
    labels: Sequence[str] | None = None,
    roles: BotnetRoles | None = None,
) -> TrafficMatrix:
    """All four components overlaid — the paper's suggested follow-on exercise.

    Uses :func:`repro.graphs.compose.overlay`, which routes big overlays
    through the runtime-parallel sparse engine when workers are configured.
    """
    from repro.graphs.compose import overlay

    _validate_positive(n=n)
    lbls, r = _roles(n, labels, roles)
    return overlay(
        component(n, labels=lbls, roles=r)
        for component in (command_and_control, botnet_clients, ddos_attack, backscatter)
    )


#: Fig. 9 components in presentation order.
DDOS_COMPONENTS = {
    "command_and_control": command_and_control,
    "botnet_clients": botnet_clients,
    "ddos_attack": ddos_attack,
    "backscatter": backscatter,
}
