"""Firewall-configuration lessons — a future-work concept from the paper.

The conclusions list "firewall configuration" among the cybersecurity
concepts the module format should grow to cover.  A firewall policy *is* a
boolean traffic matrix — which (source, destination) pairs may carry traffic —
so the existing machinery teaches it directly: show observed traffic next to
a policy, and the violating cells are one element-wise comparison away.

The default policy models the classic small-enterprise perimeter on the
template labels:

* blue ↔ blue — allowed (internal traffic),
* blue → grey — allowed (egress to the internet),
* grey → blue — allowed **only toward servers** (the DMZ rule: ``SRV*``),
* anything touching red space — denied,
* self loops — allowed (loopback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.labels import default_labels
from repro.core.spaces import NetworkSpace, SpaceMap
from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ShapeError

__all__ = [
    "FirewallPolicy",
    "default_policy",
    "violations",
    "compliant_traffic",
    "violating_traffic",
]


@dataclass(frozen=True)
class FirewallPolicy:
    """A boolean allow-matrix over a fixed label set."""

    labels: tuple[str, ...]
    allowed: np.ndarray  # (n, n) bool; allowed[i, j] == may i send to j

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.allowed.shape != (n, n) or self.allowed.dtype != np.bool_:
            raise ShapeError(
                f"policy matrix must be ({n}, {n}) bool, got "
                f"{self.allowed.shape} {self.allowed.dtype}"
            )

    def permits(self, src: str | int, dst: str | int) -> bool:
        i = self.labels.index(src.upper()) if isinstance(src, str) else int(src)
        j = self.labels.index(dst.upper()) if isinstance(dst, str) else int(dst)
        return bool(self.allowed[i, j])

    def as_matrix(self) -> TrafficMatrix:
        """The policy itself as a displayable matrix (1 = allowed).

        Colouring: allowed cells blue, denied cells red — a firewall lesson in
        one colour toggle.
        """
        colors = np.where(self.allowed, 1, 2).astype(np.int8)
        return TrafficMatrix(self.allowed.astype(np.int64), self.labels, colors)

    def as_mask(self) -> "CSRMatrix":
        """The allow-matrix as a structural mask for the expression layer.

        ``traffic⟨mask⟩`` keeps the permitted flows; the complemented mask
        keeps the violations.  This is the bridge from policy checking to the
        fused masked kernels in :mod:`repro.assoc.expr`.
        """
        from repro.assoc.sparse import CSRMatrix

        return CSRMatrix.from_dense(self.allowed)


def default_policy(labels: Sequence[str] | None = None, n: int = 10) -> FirewallPolicy:
    """The perimeter policy described in the module docstring."""
    labels = tuple(default_labels(n) if labels is None else labels)
    n = len(labels)
    sm = SpaceMap.infer(labels)
    blue = sm.indices(NetworkSpace.BLUE)
    grey = sm.indices(NetworkSpace.GREY)
    servers = np.asarray(
        [i for i in blue.tolist() if labels[i].startswith("SRV")], dtype=np.intp
    )
    allowed = np.zeros((n, n), dtype=bool)
    if blue.size:
        allowed[np.ix_(blue, blue)] = True
        if grey.size:
            allowed[np.ix_(blue, grey)] = True
    if grey.size and servers.size:
        allowed[np.ix_(grey, servers)] = True
    np.fill_diagonal(allowed, True)
    return FirewallPolicy(labels, allowed)


def _check_axes(traffic: TrafficMatrix, policy: FirewallPolicy) -> None:
    if traffic.labels != policy.labels:
        raise ShapeError("traffic and policy must share the same label axis")


def violations(traffic: TrafficMatrix, policy: FirewallPolicy) -> list[tuple[str, str, int]]:
    """Flows present in *traffic* that the policy denies.

    Returns ``(source, destination, packets)`` triples in row-major order —
    the firewall's drop log for this matrix.  Computed as a sparse masked
    select (``traffic⟨¬allowed⟩``) on the expression layer: only the stored
    flows are examined, never the full grid.
    """
    from repro.assoc import expr

    _check_axes(traffic, policy)
    bad = expr.lazy(traffic.to_csr()).select(policy.as_mask(), complement=True)
    rows, cols, vals = bad.triples()
    return [
        (traffic.labels[i], traffic.labels[j], int(v))
        for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist())
    ]


def violating_traffic(traffic: TrafficMatrix, policy: FirewallPolicy) -> TrafficMatrix:
    """Just the denied flows, coloured red — the panel a lesson displays.

    A complement-masked select (``traffic⟨¬allowed⟩``) instead of dense
    ``np.where`` grids — the kernel layer now expresses the mask directly.
    """
    _check_axes(traffic, policy)
    return traffic.masked_where(policy.as_mask(), complement=True, color=2)


def compliant_traffic(traffic: TrafficMatrix, policy: FirewallPolicy) -> TrafficMatrix:
    """The flows the firewall passes, coloured blue (``traffic⟨allowed⟩``)."""
    _check_axes(traffic, policy)
    return traffic.masked_where(policy.as_mask(), color=1)
