"""Recursive-descent parser for the GDScript subset.

Accepts everything the paper's listings contain: ``extends``, annotated member
variables (``@export`` / ``@onready``), typed declarations, functions,
``if``/``elif``/``else``, ``for``-in, ``while``, ``match`` with literal
patterns and the ``_`` wildcard (inline one-statement arms, as in the paper's
colour-toggle listing), and the usual expression grammar.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import GDScriptSyntaxError
from repro.gdscript import ast
from repro.gdscript.lexer import tokenize
from repro.gdscript.tokens import Token, TokenType as T

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not T.EOF:
            self.pos += 1
        return tok

    def check(self, *types: T) -> bool:
        return self.peek().type in types

    def match(self, *types: T) -> Optional[Token]:
        if self.check(*types):
            return self.advance()
        return None

    def expect(self, type_: T, what: str) -> Token:
        tok = self.peek()
        if tok.type is not type_:
            raise GDScriptSyntaxError(
                f"expected {what}, got {tok.type.name} {tok.value!r}",
                line=tok.line,
                column=tok.column,
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.match(T.NEWLINE):
            pass

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #

    def parse_script(self) -> ast.Script:
        extends: Optional[str] = None
        members: list[ast.VarDecl] = []
        functions: list[ast.FuncDef] = []
        self.skip_newlines()
        while not self.check(T.EOF):
            if self.match(T.EXTENDS):
                base = self.expect(T.IDENT, "a base class name after 'extends'")
                extends = str(base.value)
                self.match(T.NEWLINE)
            elif self.check(T.AT_EXPORT, T.AT_ONREADY, T.VAR):
                members.append(self.parse_member_var())
            elif self.check(T.FUNC):
                functions.append(self.parse_func())
            else:
                tok = self.peek()
                raise GDScriptSyntaxError(
                    f"unexpected {tok.type.name} {tok.value!r} at script top level",
                    line=tok.line,
                    column=tok.column,
                )
            self.skip_newlines()
        return ast.Script(extends=extends, members=members, functions=functions)

    def parse_member_var(self) -> ast.VarDecl:
        export = bool(self.match(T.AT_EXPORT))
        onready = False if export else bool(self.match(T.AT_ONREADY))
        tok = self.expect(T.VAR, "'var'")
        return self._finish_var_decl(tok.line, export=export, onready=onready)

    def _finish_var_decl(self, line: int, *, export: bool, onready: bool) -> ast.VarDecl:
        name = self.expect(T.IDENT, "a variable name")
        type_hint: Optional[str] = None
        if self.match(T.COLON):
            type_hint = str(self.expect(T.IDENT, "a type name").value)
        initializer: Optional[ast.Expr] = None
        if self.match(T.ASSIGN):
            initializer = self.parse_expression()
        self.match(T.NEWLINE)
        return ast.VarDecl(
            name=str(name.value),
            type_hint=type_hint,
            initializer=initializer,
            export=export,
            onready=onready,
            line=line,
        )

    def parse_func(self) -> ast.FuncDef:
        tok = self.expect(T.FUNC, "'func'")
        name = self.expect(T.IDENT, "a function name")
        self.expect(T.LPAREN, "'(' after the function name")
        params: list[str] = []
        while not self.check(T.RPAREN):
            p = self.expect(T.IDENT, "a parameter name")
            params.append(str(p.value))
            if self.match(T.COLON):
                self.expect(T.IDENT, "a parameter type")
            if not self.match(T.COMMA):
                break
        self.expect(T.RPAREN, "')'")
        return_type: Optional[str] = None
        if self.match(T.ARROW):
            return_type = str(self.expect(T.IDENT, "a return type").value)
        self.expect(T.COLON, "':' to open the function body")
        body = self.parse_block()
        return ast.FuncDef(
            name=str(name.value), params=params, body=body, return_type=return_type, line=tok.line
        )

    # ------------------------------------------------------------------ #
    # blocks and statements
    # ------------------------------------------------------------------ #

    def parse_block(self) -> list[ast.Stmt]:
        """A suite: inline simple statement, or NEWLINE INDENT stmts DEDENT."""
        if not self.check(T.NEWLINE):
            stmt = self.parse_simple_stmt()
            self.match(T.NEWLINE)
            return [stmt]
        self.expect(T.NEWLINE, "a newline")
        self.skip_newlines()
        self.expect(T.INDENT, "an indented block")
        stmts: list[ast.Stmt] = []
        while not self.check(T.DEDENT, T.EOF):
            stmts.append(self.parse_statement())
            self.skip_newlines()
        self.match(T.DEDENT)
        if not stmts:
            tok = self.peek()
            raise GDScriptSyntaxError("empty block", line=tok.line, column=tok.column)
        return stmts

    def parse_statement(self) -> ast.Stmt:
        if self.check(T.IF):
            return self.parse_if()
        if self.check(T.FOR):
            return self.parse_for()
        if self.check(T.WHILE):
            return self.parse_while()
        if self.check(T.MATCH):
            return self.parse_match()
        stmt = self.parse_simple_stmt()
        self.match(T.NEWLINE)
        return stmt

    def parse_simple_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.match(T.PASS):
            return ast.Pass(line=tok.line)
        if self.match(T.BREAK):
            return ast.Break(line=tok.line)
        if self.match(T.CONTINUE):
            return ast.Continue(line=tok.line)
        if self.match(T.RETURN):
            value = None if self.check(T.NEWLINE, T.DEDENT, T.EOF) else self.parse_expression()
            return ast.Return(value=value, line=tok.line)
        if self.match(T.VAR):
            name = self.expect(T.IDENT, "a variable name")
            type_hint = None
            if self.match(T.COLON):
                type_hint = str(self.expect(T.IDENT, "a type name").value)
            initializer = None
            if self.match(T.ASSIGN):
                initializer = self.parse_expression()
            return ast.VarDecl(
                name=str(name.value), type_hint=type_hint, initializer=initializer, line=tok.line
            )
        expr = self.parse_expression()
        if self.check(T.ASSIGN, T.PLUS_ASSIGN, T.MINUS_ASSIGN, T.STAR_ASSIGN, T.SLASH_ASSIGN):
            op_tok = self.advance()
            value = self.parse_expression()
            self._check_assignable(expr, op_tok)
            if op_tok.type is T.ASSIGN:
                return ast.Assign(target=expr, value=value, line=tok.line)
            op = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}[str(op_tok.value)]
            return ast.AugAssign(target=expr, op=op, value=value, line=tok.line)
        return ast.ExprStmt(expr=expr, line=tok.line)

    @staticmethod
    def _check_assignable(expr: ast.Expr, tok: Token) -> None:
        if not isinstance(expr, (ast.Identifier, ast.Attribute, ast.Index)):
            raise GDScriptSyntaxError(
                f"cannot assign to {type(expr).__name__}", line=tok.line, column=tok.column
            )

    def parse_if(self) -> ast.If:
        tok = self.expect(T.IF, "'if'")
        branches: list[tuple[ast.Expr, Sequence[ast.Stmt]]] = []
        cond = self.parse_expression()
        self.expect(T.COLON, "':' after the if condition")
        branches.append((cond, self.parse_block()))
        else_body: Sequence[ast.Stmt] = ()
        while True:
            self.skip_newlines()
            if self.match(T.ELIF):
                cond = self.parse_expression()
                self.expect(T.COLON, "':' after the elif condition")
                branches.append((cond, self.parse_block()))
            elif self.match(T.ELSE):
                self.expect(T.COLON, "':' after else")
                else_body = self.parse_block()
                break
            else:
                break
        return ast.If(branches=branches, else_body=else_body, line=tok.line)

    def parse_for(self) -> ast.For:
        tok = self.expect(T.FOR, "'for'")
        var = self.expect(T.IDENT, "a loop variable")
        self.expect(T.IN, "'in'")
        iterable = self.parse_expression()
        self.expect(T.COLON, "':' after the for header")
        body = self.parse_block()
        return ast.For(var=str(var.value), iterable=iterable, body=body, line=tok.line)

    def parse_while(self) -> ast.While:
        tok = self.expect(T.WHILE, "'while'")
        condition = self.parse_expression()
        self.expect(T.COLON, "':' after the while condition")
        body = self.parse_block()
        return ast.While(condition=condition, body=body, line=tok.line)

    def parse_match(self) -> ast.Match:
        tok = self.expect(T.MATCH, "'match'")
        subject = self.parse_expression()
        self.expect(T.COLON, "':' after the match subject")
        self.expect(T.NEWLINE, "a newline before the match arms")
        self.skip_newlines()
        self.expect(T.INDENT, "indented match arms")
        arms: list[ast.MatchArm] = []
        while not self.check(T.DEDENT, T.EOF):
            arm_tok = self.peek()
            if self.match(T.UNDERSCORE):
                wildcard, pattern = True, None
            else:
                wildcard, pattern = False, self.parse_expression()
            self.expect(T.COLON, "':' after the match pattern")
            body = self.parse_block()
            arms.append(ast.MatchArm(pattern=pattern, wildcard=wildcard, body=body, line=arm_tok.line))
            self.skip_newlines()
        self.match(T.DEDENT)
        if not arms:
            raise GDScriptSyntaxError("match with no arms", line=tok.line, column=tok.column)
        return ast.Match(subject=subject, arms=arms, line=tok.line)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    # ------------------------------------------------------------------ #

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while True:
            tok = self.match(T.OR)
            if tok is None:
                return left
            right = self.parse_and()
            left = ast.Binary(op="or", left=left, right=right, line=tok.line)

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while True:
            tok = self.match(T.AND)
            if tok is None:
                return left
            right = self.parse_not()
            left = ast.Binary(op="and", left=left, right=right, line=tok.line)

    def parse_not(self) -> ast.Expr:
        tok = self.match(T.NOT, T.BANG)
        if tok is not None:
            operand = self.parse_not()
            return ast.Unary(op="not", operand=operand, line=tok.line)
        return self.parse_comparison()

    _COMPARISONS = {
        T.EQ: "==", T.NE: "!=", T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">=", T.IN: "in",
    }

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        while self.peek().type in self._COMPARISONS:
            tok = self.advance()
            right = self.parse_additive()
            left = ast.Binary(op=self._COMPARISONS[tok.type], left=left, right=right, line=tok.line)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.check(T.PLUS, T.MINUS):
            tok = self.advance()
            right = self.parse_multiplicative()
            left = ast.Binary(op=str(tok.value), left=left, right=right, line=tok.line)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.check(T.STAR, T.SLASH, T.PERCENT):
            tok = self.advance()
            right = self.parse_unary()
            left = ast.Binary(op=str(tok.value), left=left, right=right, line=tok.line)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.check(T.MINUS):
            tok = self.advance()
            operand = self.parse_unary()
            return ast.Unary(op="-", operand=operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.match(T.DOT):
                name = self.expect(T.IDENT, "an attribute name after '.'")
                if self.check(T.LPAREN):
                    args = self.parse_args()
                    expr = ast.MethodCall(obj=expr, method=str(name.value), args=args, line=name.line)
                else:
                    expr = ast.Attribute(obj=expr, name=str(name.value), line=name.line)
            elif self.check(T.LBRACKET):
                tok = self.advance()
                index = self.parse_expression()
                self.expect(T.RBRACKET, "']'")
                expr = ast.Index(obj=expr, index=index, line=tok.line)
            else:
                return expr

    def parse_args(self) -> list[ast.Expr]:
        self.expect(T.LPAREN, "'('")
        args: list[ast.Expr] = []
        self.skip_newlines()
        while not self.check(T.RPAREN):
            args.append(self.parse_expression())
            self.skip_newlines()
            if not self.match(T.COMMA):
                break
            self.skip_newlines()
        self.expect(T.RPAREN, "')'")
        return args

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if self.match(T.INT, T.FLOAT, T.STRING):
            return ast.Literal(value=tok.value, line=tok.line)
        if self.match(T.TRUE):
            return ast.Literal(value=True, line=tok.line)
        if self.match(T.FALSE):
            return ast.Literal(value=False, line=tok.line)
        if self.match(T.NULL):
            return ast.Literal(value=None, line=tok.line)
        if self.match(T.NODEPATH):
            return ast.NodePath(path=str(tok.value), line=tok.line)
        if self.check(T.IDENT):
            self.advance()
            if self.check(T.LPAREN):
                args = self.parse_args()
                return ast.Call(name=str(tok.value), args=args, line=tok.line)
            return ast.Identifier(name=str(tok.value), line=tok.line)
        if self.match(T.LPAREN):
            self.skip_newlines()
            expr = self.parse_expression()
            self.skip_newlines()
            self.expect(T.RPAREN, "')'")
            return expr
        if self.match(T.LBRACKET):
            items: list[ast.Expr] = []
            self.skip_newlines()
            while not self.check(T.RBRACKET):
                items.append(self.parse_expression())
                self.skip_newlines()
                if not self.match(T.COMMA):
                    break
                self.skip_newlines()
            self.expect(T.RBRACKET, "']'")
            return ast.ArrayLiteral(items=items, line=tok.line)
        if self.match(T.LBRACE):
            keys: list[ast.Expr] = []
            values: list[ast.Expr] = []
            self.skip_newlines()
            while not self.check(T.RBRACE):
                keys.append(self.parse_expression())
                self.expect(T.COLON, "':' between dictionary key and value")
                values.append(self.parse_expression())
                self.skip_newlines()
                if not self.match(T.COMMA):
                    break
                self.skip_newlines()
            self.expect(T.RBRACE, "'}'")
            return ast.DictLiteral(keys=keys, values=values, line=tok.line)
        raise GDScriptSyntaxError(
            f"unexpected {tok.type.name} {tok.value!r} in expression",
            line=tok.line,
            column=tok.column,
        )


def parse(source: str) -> ast.Script:
    """Tokenize and parse GDScript source into a :class:`~repro.gdscript.ast.Script`."""
    return _Parser(tokenize(source)).parse_script()
