"""GDScript front end: lexer, parser, and interpreter bound to engine nodes."""

from repro.gdscript.interpreter import GDScriptClass, ScriptInstance, compile_script
from repro.gdscript.lexer import tokenize
from repro.gdscript.parser import parse

__all__ = ["GDScriptClass", "ScriptInstance", "compile_script", "tokenize", "parse"]
