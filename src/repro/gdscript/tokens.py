"""Token definitions for the GDScript front end."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    # layout
    NEWLINE = auto()
    INDENT = auto()
    DEDENT = auto()
    EOF = auto()
    # literals and names
    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    NODEPATH = auto()  # $Name or $"../Path"
    # keywords
    VAR = auto()
    FUNC = auto()
    IF = auto()
    ELIF = auto()
    ELSE = auto()
    FOR = auto()
    WHILE = auto()
    MATCH = auto()
    IN = auto()
    RETURN = auto()
    PASS = auto()
    BREAK = auto()
    CONTINUE = auto()
    EXTENDS = auto()
    TRUE = auto()
    FALSE = auto()
    NULL = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    # annotations
    AT_EXPORT = auto()
    AT_ONREADY = auto()
    # punctuation / operators
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LBRACE = auto()
    RBRACE = auto()
    COMMA = auto()
    COLON = auto()
    DOT = auto()
    ASSIGN = auto()       # =
    PLUS_ASSIGN = auto()  # +=
    MINUS_ASSIGN = auto()  # -=
    STAR_ASSIGN = auto()  # *=
    SLASH_ASSIGN = auto()  # /=
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    EQ = auto()   # ==
    NE = auto()   # !=
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    BANG = auto()  # ! (GDScript accepts ! as not)
    ARROW = auto()  # -> (return type annotation)
    UNDERSCORE = auto()  # match wildcard


KEYWORDS = {
    "var": TokenType.VAR,
    "func": TokenType.FUNC,
    "if": TokenType.IF,
    "elif": TokenType.ELIF,
    "else": TokenType.ELSE,
    "for": TokenType.FOR,
    "while": TokenType.WHILE,
    "match": TokenType.MATCH,
    "in": TokenType.IN,
    "return": TokenType.RETURN,
    "pass": TokenType.PASS,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "extends": TokenType.EXTENDS,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
