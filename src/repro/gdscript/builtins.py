"""GDScript built-in functions available to every script.

Only the built-ins the paper's listings (and reasonable educator scripts)
need.  ``print``/``printerr`` write through the interpreter's output sink so
tests and the game console can capture script output instead of stdout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.engine.resources import preload as engine_preload
from repro.errors import GDScriptRuntimeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gdscript.interpreter import Interpreter

__all__ = ["make_builtins"]


def _gd_str(value: Any) -> str:
    """GDScript's ``str()``: booleans print lowercase, null prints <null>."""
    if value is None:
        return "<null>"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value == int(value):
        return str(value)  # GDScript keeps the .0; Python's str already does
    return str(value)


def make_builtins(interp: "Interpreter") -> dict[str, Callable[..., Any]]:
    """The built-in table, closed over the interpreter's output sink."""

    def gd_print(*args: Any) -> None:
        interp.emit_output("".join(_gd_str(a) for a in args), error=False)

    def gd_printerr(*args: Any) -> None:
        interp.emit_output("".join(_gd_str(a) for a in args), error=True)

    def gd_len(value: Any) -> int:
        try:
            return len(value)
        except TypeError:
            raise GDScriptRuntimeError(f"len() not supported for {type(value).__name__}") from None

    def gd_int(value: Any) -> int:
        try:
            return int(value)
        except (TypeError, ValueError):
            raise GDScriptRuntimeError(f"cannot convert {value!r} to int") from None

    def gd_float(value: Any) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            raise GDScriptRuntimeError(f"cannot convert {value!r} to float") from None

    def gd_range(*args: int) -> list[int]:
        if not 1 <= len(args) <= 3:
            raise GDScriptRuntimeError(f"range() takes 1..3 arguments, got {len(args)}")
        return list(range(*args))

    def gd_preload(path: Any) -> Any:
        if not isinstance(path, str):
            raise GDScriptRuntimeError("preload() expects a resource path string")
        return engine_preload(path)

    def gd_abs(value: Any) -> Any:
        return abs(value)

    def gd_min(*args: Any) -> Any:
        return min(args)

    def gd_max(*args: Any) -> Any:
        return max(args)

    def gd_clamp(value: Any, lo: Any, hi: Any) -> Any:
        return max(lo, min(hi, value))

    return {
        "print": gd_print,
        "printerr": gd_printerr,
        "push_error": gd_printerr,  # close enough for a headless console
        "len": gd_len,
        "str": _gd_str,
        "int": gd_int,
        "float": gd_float,
        "range": gd_range,
        "preload": gd_preload,
        "abs": gd_abs,
        "min": gd_min,
        "max": gd_max,
        "clamp": gd_clamp,
    }
