"""AST node definitions for the GDScript subset.

Plain frozen dataclasses; every node carries its source line so runtime errors
point back at the script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "Expr", "Stmt",
    "Literal", "Identifier", "NodePath", "ArrayLiteral", "DictLiteral",
    "Attribute", "Index", "Call", "MethodCall", "Unary", "Binary",
    "ExprStmt", "VarDecl", "Assign", "AugAssign", "If", "For", "While",
    "Match", "MatchArm", "Return", "Pass", "Break", "Continue",
    "FuncDef", "Script",
]


@dataclass(frozen=True)
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Stmt:
    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Literal(Expr):
    value: object = None


@dataclass(frozen=True)
class Identifier(Expr):
    name: str = ""


@dataclass(frozen=True)
class NodePath(Expr):
    """``$"../Data"`` — resolved against the bound node at evaluation time."""

    path: str = ""


@dataclass(frozen=True)
class ArrayLiteral(Expr):
    items: Sequence[Expr] = ()


@dataclass(frozen=True)
class DictLiteral(Expr):
    keys: Sequence[Expr] = ()
    values: Sequence[Expr] = ()


@dataclass(frozen=True)
class Attribute(Expr):
    obj: Expr = None  # type: ignore[assignment]
    name: str = ""


@dataclass(frozen=True)
class Index(Expr):
    obj: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    """A bare call ``f(args)`` — builtin, script function, or node method."""

    name: str = ""
    args: Sequence[Expr] = ()


@dataclass(frozen=True)
class MethodCall(Expr):
    """``obj.method(args)``."""

    obj: Expr = None  # type: ignore[assignment]
    method: str = ""
    args: Sequence[Expr] = ()


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class VarDecl(Stmt):
    """``var name : Type = expr`` with optional @export / @onready annotation."""

    name: str = ""
    type_hint: Optional[str] = None
    initializer: Optional[Expr] = None
    export: bool = False
    onready: bool = False


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` where target is Identifier / Attribute / Index."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class AugAssign(Stmt):
    """``target op= value`` for ``+= -= *= /=``."""

    target: Expr = None  # type: ignore[assignment]
    op: str = "+"
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class If(Stmt):
    """if/elif/else chain: branches are (condition, body); else_body optional."""

    branches: Sequence[tuple[Expr, Sequence[Stmt]]] = ()
    else_body: Sequence[Stmt] = ()


@dataclass(frozen=True)
class For(Stmt):
    var: str = ""
    iterable: Expr = None  # type: ignore[assignment]
    body: Sequence[Stmt] = ()


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Sequence[Stmt] = ()


@dataclass(frozen=True)
class MatchArm(Stmt):
    """One ``pattern: body`` arm; ``wildcard`` marks the ``_:`` arm."""

    pattern: Optional[Expr] = None
    wildcard: bool = False
    body: Sequence[Stmt] = ()


@dataclass(frozen=True)
class Match(Stmt):
    subject: Expr = None  # type: ignore[assignment]
    arms: Sequence[MatchArm] = ()


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Pass(Stmt):
    pass


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class FuncDef(Stmt):
    name: str = ""
    params: Sequence[str] = ()
    body: Sequence[Stmt] = ()
    return_type: Optional[str] = None


@dataclass(frozen=True)
class Script:
    """A parsed script: the extends clause, member vars, and functions."""

    extends: Optional[str]
    members: Sequence[VarDecl]
    functions: Sequence[FuncDef]

    def function(self, name: str) -> Optional[FuncDef]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
