"""Indentation-aware tokenizer for the GDScript subset.

Handles the layout rules the paper's listings use: tab- or space-indented
blocks (INDENT/DEDENT tokens, Python style), ``#`` comments, both quote styles
for strings (including the curly quotes PDF extraction produces), ``$``-prefix
node paths, and the ``@export`` / ``@onready`` annotations.
"""

from __future__ import annotations

from repro.errors import GDScriptSyntaxError
from repro.gdscript.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_TWO_CHAR_OPS = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "*=": TokenType.STAR_ASSIGN,
    "/=": TokenType.SLASH_ASSIGN,
    "->": TokenType.ARROW,
}

_ONE_CHAR_OPS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.BANG,
}

#: Quote characters accepted as string delimiters.  The paper's PDF listings
#: contain curly/backtick quotes (``‘‘Hello, world!’’``); each opener maps to
#: the closers that may terminate it.
_QUOTE_PAIRS = {
    '"': ('"',),
    "'": ("'",),
    "‘": ("’",),  # ' ... '
    "“": ("”",),  # " ... "
    "’": ("’",),
    "”": ("”",),
}



def _is_ascii_digit(ch: str) -> bool:
    """ASCII digits only: unicode digit-likes ('²') are not GDScript numerals."""
    return "0" <= ch <= "9"

class _Lexer:
    def __init__(self, source: str) -> None:
        self.lines = source.replace("\r\n", "\n").replace("\r", "\n").split("\n")
        self.tokens: list[Token] = []
        self.indents = [0]
        self.paren_depth = 0

    def error(self, message: str, line: int, column: int) -> GDScriptSyntaxError:
        return GDScriptSyntaxError(message, line=line, column=column)

    def run(self) -> list[Token]:
        pending_blank = False
        for lineno, raw in enumerate(self.lines, start=1):
            stripped = raw.strip()
            if self.paren_depth == 0:
                if stripped == "" or stripped.startswith("#"):
                    pending_blank = True
                    continue
                self._handle_indent(raw, lineno)
            self._lex_line(raw, lineno)
            if self.paren_depth == 0:
                self.tokens.append(Token(TokenType.NEWLINE, "\n", lineno, len(raw) + 1))
            pending_blank = False
        del pending_blank
        last_line = len(self.lines)
        while len(self.indents) > 1:
            self.indents.pop()
            self.tokens.append(Token(TokenType.DEDENT, None, last_line, 1))
        self.tokens.append(Token(TokenType.EOF, None, last_line, 1))
        return self.tokens

    def _handle_indent(self, raw: str, lineno: int) -> None:
        width = 0
        for ch in raw:
            if ch == " ":
                width += 1
            elif ch == "\t":
                width += 4  # a tab counts as one 4-wide indent stop
            else:
                break
        current = self.indents[-1]
        if width > current:
            self.indents.append(width)
            self.tokens.append(Token(TokenType.INDENT, width, lineno, 1))
        else:
            while width < self.indents[-1]:
                self.indents.pop()
                self.tokens.append(Token(TokenType.DEDENT, None, lineno, 1))
            if width != self.indents[-1]:
                raise self.error(
                    f"inconsistent dedent to width {width}", lineno, 1
                )

    def _lex_line(self, raw: str, lineno: int) -> None:
        i = 0
        n = len(raw)
        while i < n:
            ch = raw[i]
            col = i + 1
            if ch in " \t":
                i += 1
                continue
            if ch == "#":
                return
            if ch == "@":
                # annotations: @export, @onready (others rejected)
                j = i + 1
                while j < n and (raw[j].isalnum() or raw[j] == "_"):
                    j += 1
                word = raw[i + 1 : j]
                if word == "export":
                    self.tokens.append(Token(TokenType.AT_EXPORT, "@export", lineno, col))
                elif word == "onready":
                    self.tokens.append(Token(TokenType.AT_ONREADY, "@onready", lineno, col))
                else:
                    raise self.error(f"unsupported annotation @{word}", lineno, col)
                i = j
                continue
            if ch == "$":
                i = self._lex_nodepath(raw, i, lineno)
                continue
            if ch in _QUOTE_PAIRS:
                i = self._lex_string(raw, i, lineno)
                continue
            if _is_ascii_digit(ch):
                i = self._lex_number(raw, i, lineno)
                continue
            if ch.isalpha() or ch == "_":
                i = self._lex_word(raw, i, lineno)
                continue
            two = raw[i : i + 2]
            if two in _TWO_CHAR_OPS:
                self.tokens.append(Token(_TWO_CHAR_OPS[two], two, lineno, col))
                i += 2
                continue
            if ch in _ONE_CHAR_OPS:
                tok = _ONE_CHAR_OPS[ch]
                if tok in (TokenType.LPAREN, TokenType.LBRACKET, TokenType.LBRACE):
                    self.paren_depth += 1
                elif tok in (TokenType.RPAREN, TokenType.RBRACKET, TokenType.RBRACE):
                    self.paren_depth = max(0, self.paren_depth - 1)
                self.tokens.append(Token(tok, ch, lineno, col))
                i += 1
                continue
            raise self.error(f"unexpected character {ch!r}", lineno, col)

    def _lex_nodepath(self, raw: str, i: int, lineno: int) -> int:
        col = i + 1
        j = i + 1
        if j < len(raw) and raw[j] in _QUOTE_PAIRS:
            closers = _QUOTE_PAIRS[raw[j]]
            k = j + 1
            while k < len(raw) and raw[k] not in closers:
                k += 1
            if k >= len(raw):
                raise self.error("unterminated node path string", lineno, col)
            path = raw[j + 1 : k]
            self.tokens.append(Token(TokenType.NODEPATH, path, lineno, col))
            return k + 1
        # bare form: $Name or $Parent/Child
        k = j
        while k < len(raw) and (raw[k].isalnum() or raw[k] in "_/"):
            k += 1
        if k == j:
            raise self.error("expected node path after '$'", lineno, col)
        self.tokens.append(Token(TokenType.NODEPATH, raw[j:k], lineno, col))
        return k

    def _lex_string(self, raw: str, i: int, lineno: int) -> int:
        col = i + 1
        opener = raw[i]
        closers = _QUOTE_PAIRS[opener]
        # the PDF's doubled curly quotes: skip a doubled opener, expect doubled closer
        doubled = i + 1 < len(raw) and raw[i + 1] == opener and opener in ("‘", "“")
        j = i + (2 if doubled else 1)
        out: list[str] = []
        while j < len(raw):
            ch = raw[j]
            if ch == "\\" and j + 1 < len(raw):
                esc = raw[j + 1]
                out.append({"n": "\n", "t": "\t", '"': '"', "'": "'", "\\": "\\"}.get(esc, esc))
                j += 2
                continue
            if ch in closers:
                end = j + 1
                if doubled and end < len(raw) and raw[end] in closers:
                    end += 1
                self.tokens.append(Token(TokenType.STRING, "".join(out), lineno, col))
                return end
            out.append(ch)
            j += 1
        raise self.error("unterminated string literal", lineno, col)

    def _lex_number(self, raw: str, i: int, lineno: int) -> int:
        col = i + 1
        j = i
        while j < len(raw) and _is_ascii_digit(raw[j]):
            j += 1
        if j < len(raw) and raw[j] == "." and j + 1 < len(raw) and _is_ascii_digit(raw[j + 1]):
            j += 1
            while j < len(raw) and _is_ascii_digit(raw[j]):
                j += 1
            self.tokens.append(Token(TokenType.FLOAT, float(raw[i:j]), lineno, col))
        else:
            self.tokens.append(Token(TokenType.INT, int(raw[i:j]), lineno, col))
        return j

    def _lex_word(self, raw: str, i: int, lineno: int) -> int:
        col = i + 1
        j = i
        while j < len(raw) and (raw[j].isalnum() or raw[j] == "_"):
            j += 1
        word = raw[i:j]
        if word == "_" :
            self.tokens.append(Token(TokenType.UNDERSCORE, "_", lineno, col))
        elif word in KEYWORDS:
            self.tokens.append(Token(KEYWORDS[word], word, lineno, col))
        else:
            self.tokens.append(Token(TokenType.IDENT, word, lineno, col))
        return j


def tokenize(source: str) -> list[Token]:
    """Tokenize GDScript source into a flat token list ending in EOF."""
    return _Lexer(source).run()
