"""Tree-walking interpreter executing GDScript against engine nodes.

A :class:`GDScriptClass` is a compiled script; instantiating it against a
:class:`~repro.engine.node.Node` produces a :class:`ScriptInstance` that the
engine drives through the normal lifecycle hooks:

* plain ``var`` members initialise at instantiation,
* ``@export`` members register as node export variables (Inspector-editable),
* ``@onready`` members evaluate when the node readies — after the node is in
  the tree, so ``$"../Data"`` resolves — immediately before ``_ready`` runs,
* any function is callable by name (the colour-toggle button calls
  ``change_pallet_color``).

Semantics follow GDScript where they differ from Python: integer ``/``
truncates, ``+`` concatenates strings and arrays but never mixes types,
``print`` output goes to the instance's capturable console.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.engine.node import Node
from repro.errors import GDScriptRuntimeError
from repro.gdscript import ast
from repro.gdscript.builtins import make_builtins
from repro.gdscript.parser import parse

__all__ = ["GDScriptClass", "ScriptInstance", "compile_script"]

#: Statement budget per top-level call — a tripwire for runaway educator scripts.
MAX_STEPS = 2_000_000


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Env:
    """A lexical scope chain (function locals and nested blocks)."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.vars: dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> tuple[bool, Any]:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.vars:
                return True, env.vars[name]
            env = env.parent
        return False, None

    def assign(self, name: str, value: Any) -> bool:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return True
            env = env.parent
        return False

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value


class GDScriptClass:
    """A compiled script, shareable across any number of node instances."""

    def __init__(self, script: ast.Script, source: str) -> None:
        self.ast = script
        self.source = source
        self.functions = {fn.name: fn for fn in script.functions}

    @classmethod
    def compile(cls, source: str) -> "GDScriptClass":
        return cls(parse(source), source)

    @property
    def extends(self) -> Optional[str]:
        return self.ast.extends

    def instantiate(self, node: Node) -> "ScriptInstance":
        """Bind to a node: initialise members, register exports, attach."""
        instance = ScriptInstance(self, node)
        node.attach_script(instance)
        return instance


class ScriptInstance:
    """One script bound to one node: member variables plus callable functions."""

    def __init__(self, cls: GDScriptClass, node: Node) -> None:
        self.cls = cls
        self.node = node
        self.vars: dict[str, Any] = {}
        self.output: list[tuple[str, bool]] = []
        self.console: Optional[Callable[[str, bool], None]] = None
        self._interp = Interpreter(self)
        self._onready_done = False
        for member in cls.ast.members:
            if member.onready:
                self.vars[member.name] = None
                continue
            value = (
                self._interp.evaluate(member.initializer, _Env())
                if member.initializer is not None
                else None
            )
            self.vars[member.name] = value
            if member.export:
                node.export_var(member.name, value, member.type_hint)

    # -- engine lifecycle hooks ------------------------------------------- #

    def _ready(self) -> None:
        for member in self.cls.ast.members:
            if member.onready:
                value = (
                    self._interp.evaluate(member.initializer, _Env())
                    if member.initializer is not None
                    else None
                )
                self.vars[member.name] = value
        self._onready_done = True
        if "_ready" in self.cls.functions:
            self.call("_ready")

    def _process(self, delta: float) -> None:
        if "_process" in self.cls.functions:
            self.call("_process", delta)

    def _input(self, event: Any) -> None:
        if "_input" in self.cls.functions:
            self.call("_input", event)

    # -- script API -------------------------------------------------------- #

    def has_function(self, name: str) -> bool:
        return name in self.cls.functions

    def call(self, name: str, *args: Any) -> Any:
        fn = self.cls.functions.get(name)
        if fn is None:
            raise GDScriptRuntimeError(f"script has no function {name!r}")
        return self._interp.call_function(fn, list(args))

    def get_var(self, name: str) -> Any:
        if name not in self.vars:
            raise GDScriptRuntimeError(f"script has no member variable {name!r}")
        return self.vars[name]

    def set_var(self, name: str, value: Any) -> None:
        """Set a member variable (the Inspector writes exports through this)."""
        if name not in self.vars:
            raise GDScriptRuntimeError(f"script has no member variable {name!r}")
        self.vars[name] = value

    def __getattr__(self, name: str) -> Any:
        # expose script functions as bound callables: script.change_pallet_color()
        cls = object.__getattribute__(self, "cls")
        if name in cls.functions:
            return lambda *args: self.call(name, *args)
        raise AttributeError(name)

    def output_text(self) -> str:
        """All captured ``print``/``printerr`` output, newline-joined."""
        return "\n".join(line for line, _ in self.output)

    def error_lines(self) -> list[str]:
        return [line for line, is_err in self.output if is_err]


class Interpreter:
    """Statement/expression evaluator bound to one script instance."""

    def __init__(self, instance: ScriptInstance) -> None:
        self.instance = instance
        self.builtins = make_builtins(self)
        self.steps = 0

    # -- output ------------------------------------------------------------ #

    def emit_output(self, text: str, *, error: bool) -> None:
        self.instance.output.append((text, error))
        if self.instance.console is not None:
            self.instance.console(text, error)

    # -- function calls ----------------------------------------------------- #

    def call_function(self, fn: ast.FuncDef, args: list[Any]) -> Any:
        if len(args) != len(fn.params):
            raise GDScriptRuntimeError(
                f"{fn.name}() takes {len(fn.params)} arguments, got {len(args)}",
                line=fn.line,
            )
        env = _Env()
        for name, value in zip(fn.params, args):
            env.declare(name, value)
        self.steps = 0
        try:
            self.exec_block(fn.body, env)
        except _Return as ret:
            return ret.value
        return None

    # -- statements ---------------------------------------------------------- #

    def exec_block(self, stmts, env: _Env) -> None:  # noqa: ANN001
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.Stmt, env: _Env) -> None:
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise GDScriptRuntimeError(
                f"script exceeded {MAX_STEPS} statements (infinite loop?)", line=stmt.line
            )
        if isinstance(stmt, ast.ExprStmt):
            self.evaluate(stmt.expr, env)
        elif isinstance(stmt, ast.VarDecl):
            value = self.evaluate(stmt.initializer, env) if stmt.initializer is not None else None
            env.declare(stmt.name, value)
        elif isinstance(stmt, ast.Assign):
            self.assign(stmt.target, self.evaluate(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            current = self.evaluate(stmt.target, env)
            value = self._binary(stmt.op, current, self.evaluate(stmt.value, env), stmt.line)
            self.assign(stmt.target, value, env)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.branches:
                if self._truthy(self.evaluate(cond, env)):
                    self.exec_block(body, _Env(env))
                    return
            if stmt.else_body:
                self.exec_block(stmt.else_body, _Env(env))
        elif isinstance(stmt, ast.For):
            iterable = self._iterable(self.evaluate(stmt.iterable, env), stmt.line)
            loop_env = _Env(env)
            loop_env.declare(stmt.var, None)
            for item in iterable:
                loop_env.vars[stmt.var] = item
                try:
                    self.exec_block(stmt.body, _Env(loop_env))
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.While):
            while self._truthy(self.evaluate(stmt.condition, env)):
                self.steps += 1
                if self.steps > MAX_STEPS:
                    raise GDScriptRuntimeError(
                        f"script exceeded {MAX_STEPS} statements (infinite loop?)",
                        line=stmt.line,
                    )
                try:
                    self.exec_block(stmt.body, _Env(env))
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.Match):
            subject = self.evaluate(stmt.subject, env)
            for arm in stmt.arms:
                if arm.wildcard or self.evaluate(arm.pattern, env) == subject:
                    self.exec_block(arm.body, _Env(env))
                    return
        elif isinstance(stmt, ast.Return):
            raise _Return(self.evaluate(stmt.value, env) if stmt.value is not None else None)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover - parser produces no other nodes
            raise GDScriptRuntimeError(f"unknown statement {type(stmt).__name__}", line=stmt.line)

    def assign(self, target: ast.Expr, value: Any, env: _Env) -> None:
        if isinstance(target, ast.Identifier):
            if env.assign(target.name, value):
                return
            if target.name in self.instance.vars:
                self.instance.vars[target.name] = value
                # keep Inspector-visible export values in sync
                if target.name in self.instance.node.exports:
                    self.instance.node.exports[target.name]  # ensure exists
                    self.instance.node._exports[target.name].value = value
                return
            raise GDScriptRuntimeError(
                f"assignment to undeclared variable {target.name!r}", line=target.line
            )
        if isinstance(target, ast.Attribute):
            obj = self.evaluate(target.obj, env)
            self._set_attr(obj, target.name, value, target.line)
            return
        if isinstance(target, ast.Index):
            obj = self.evaluate(target.obj, env)
            idx = self.evaluate(target.index, env)
            try:
                obj[idx] = value
            except (TypeError, IndexError, KeyError) as exc:
                raise GDScriptRuntimeError(f"index assignment failed: {exc}", line=target.line) from None
            return
        raise GDScriptRuntimeError(
            f"cannot assign to {type(target).__name__}", line=target.line
        )

    # -- expressions ---------------------------------------------------------- #

    def evaluate(self, expr: ast.Expr, env: _Env) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Identifier):
            return self._lookup(expr.name, env, expr.line)
        if isinstance(expr, ast.NodePath):
            return self.instance.node.get_node(expr.path)
        if isinstance(expr, ast.ArrayLiteral):
            return [self.evaluate(item, env) for item in expr.items]
        if isinstance(expr, ast.DictLiteral):
            return {
                self.evaluate(k, env): self.evaluate(v, env)
                for k, v in zip(expr.keys, expr.values)
            }
        if isinstance(expr, ast.Attribute):
            obj = self.evaluate(expr.obj, env)
            return self._get_attr(obj, expr.name, expr.line)
        if isinstance(expr, ast.Index):
            obj = self.evaluate(expr.obj, env)
            idx = self.evaluate(expr.index, env)
            try:
                return obj[idx]
            except (TypeError, IndexError, KeyError) as exc:
                raise GDScriptRuntimeError(f"indexing failed: {exc}", line=expr.line) from None
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        if isinstance(expr, ast.MethodCall):
            return self._method_call(expr, env)
        if isinstance(expr, ast.Unary):
            operand = self.evaluate(expr.operand, env)
            if expr.op == "-":
                try:
                    return -operand
                except TypeError:
                    raise GDScriptRuntimeError(
                        f"cannot negate {type(operand).__name__}", line=expr.line
                    ) from None
            return not self._truthy(operand)
        if isinstance(expr, ast.Binary):
            if expr.op == "and":
                return self._truthy(self.evaluate(expr.left, env)) and self._truthy(
                    self.evaluate(expr.right, env)
                )
            if expr.op == "or":
                return self._truthy(self.evaluate(expr.left, env)) or self._truthy(
                    self.evaluate(expr.right, env)
                )
            return self._binary(
                expr.op, self.evaluate(expr.left, env), self.evaluate(expr.right, env), expr.line
            )
        raise GDScriptRuntimeError(f"unknown expression {type(expr).__name__}", line=expr.line)

    # -- helpers ---------------------------------------------------------------- #

    def _lookup(self, name: str, env: _Env, line: int) -> Any:
        if name == "self":
            return self.instance.node
        found, value = env.lookup(name)
        if found:
            return value
        if name in self.instance.vars:
            return self.instance.vars[name]
        node = self.instance.node
        if not name.startswith("_") and hasattr(node, name):
            return getattr(node, name)
        if name in self.builtins:
            return self.builtins[name]
        raise GDScriptRuntimeError(f"undefined identifier {name!r}", line=line)

    def _call(self, expr: ast.Call, env: _Env) -> Any:
        args = [self.evaluate(a, env) for a in expr.args]
        name = expr.name
        # a local variable holding a callable shadows everything
        found, value = env.lookup(name)
        if found and callable(value):
            return value(*args)
        if name in self.instance.cls.functions:
            return self.instance.call(name, *args)
        node = self.instance.node
        if not name.startswith("_") and hasattr(node, name) and callable(getattr(node, name)):
            return getattr(node, name)(*args)
        if name in self.builtins:
            return self.builtins[name](*args)
        raise GDScriptRuntimeError(f"undefined function {name!r}", line=expr.line)

    def _method_call(self, expr: ast.MethodCall, env: _Env) -> Any:
        obj = self.evaluate(expr.obj, env)
        args = [self.evaluate(a, env) for a in expr.args]
        # a node with an attached script exposes the script's functions
        if isinstance(obj, Node) and obj.script is not None:
            script = obj.script
            if isinstance(script, ScriptInstance) and script.has_function(expr.method):
                return script.call(expr.method, *args)
        method = expr.method
        if method.startswith("_"):
            raise GDScriptRuntimeError(
                f"cannot call private method {method!r} from a script", line=expr.line
            )
        if not hasattr(obj, method):
            raise GDScriptRuntimeError(
                f"{type(obj).__name__} has no method {method!r}", line=expr.line
            )
        target = getattr(obj, method)
        if not callable(target):
            raise GDScriptRuntimeError(f"{method!r} is not callable", line=expr.line)
        try:
            return target(*args)
        except GDScriptRuntimeError:
            raise
        except Exception as exc:  # surface engine errors with script location
            raise GDScriptRuntimeError(f"{method}() failed: {exc}", line=expr.line) from exc

    def _get_attr(self, obj: Any, name: str, line: int) -> Any:
        if name.startswith("_"):
            raise GDScriptRuntimeError(f"cannot access private attribute {name!r}", line=line)
        if isinstance(obj, Node) and obj.script is not None:
            script = obj.script
            if isinstance(script, ScriptInstance) and name in script.vars:
                return script.vars[name]
        if isinstance(obj, dict):
            if name in obj:
                return obj[name]
        if not hasattr(obj, name):
            raise GDScriptRuntimeError(
                f"{type(obj).__name__} has no attribute {name!r}", line=line
            )
        return getattr(obj, name)

    def _set_attr(self, obj: Any, name: str, value: Any, line: int) -> None:
        if name.startswith("_"):
            raise GDScriptRuntimeError(f"cannot assign private attribute {name!r}", line=line)
        if isinstance(obj, Node) and obj.script is not None:
            script = obj.script
            if isinstance(script, ScriptInstance) and name in script.vars:
                script.vars[name] = value
                return
        if isinstance(obj, dict):
            obj[name] = value
            return
        if not hasattr(obj, name):
            raise GDScriptRuntimeError(
                f"{type(obj).__name__} has no attribute {name!r}", line=line
            )
        try:
            setattr(obj, name, value)
        except AttributeError as exc:
            raise GDScriptRuntimeError(f"cannot assign {name!r}: {exc}", line=line) from None

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)

    @staticmethod
    def _iterable(value: Any, line: int):  # noqa: ANN205
        if isinstance(value, (list, tuple, str, range)):
            return value
        if isinstance(value, dict):
            return list(value.keys())
        try:
            return list(value)
        except TypeError:
            raise GDScriptRuntimeError(
                f"cannot iterate over {type(value).__name__}", line=line
            ) from None

    def _binary(self, op: str, left: Any, right: Any, line: int) -> Any:
        try:
            if op == "+":
                if isinstance(left, str) != isinstance(right, str):
                    raise GDScriptRuntimeError(
                        "cannot mix String and non-String with '+'; use str()", line=line
                    )
                if isinstance(left, list) and isinstance(right, list):
                    return left + right
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    if right == 0:
                        raise GDScriptRuntimeError("integer division by zero", line=line)
                    return math.trunc(left / right)
                if right == 0:
                    raise GDScriptRuntimeError("division by zero", line=line)
                return left / right
            if op == "%":
                if isinstance(left, str):
                    return left % right  # GDScript string formatting
                if right == 0:
                    raise GDScriptRuntimeError("modulo by zero", line=line)
                return math.fmod(left, right) if isinstance(left, float) or isinstance(right, float) else int(math.fmod(left, right))
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "in":
                return left in right
        except GDScriptRuntimeError:
            raise
        except TypeError as exc:
            raise GDScriptRuntimeError(f"invalid operands for {op!r}: {exc}", line=line) from None
        raise GDScriptRuntimeError(f"unknown operator {op!r}", line=line)


def compile_script(source: str) -> GDScriptClass:
    """Compile GDScript source (convenience alias for ``GDScriptClass.compile``)."""
    return GDScriptClass.compile(source)
