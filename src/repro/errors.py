"""Exception hierarchy for the Traffic Warehouse reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TrafficMatrixError(ReproError):
    """Invalid construction or manipulation of a :class:`~repro.core.TrafficMatrix`."""


class ShapeError(TrafficMatrixError):
    """Operands have incompatible shapes."""


class LabelError(TrafficMatrixError):
    """Axis labels are missing, duplicated, or do not match the matrix size."""


class ColorError(TrafficMatrixError):
    """A colour grid contains values outside the supported palette."""


class SemiringError(ReproError):
    """A semiring was constructed from incompatible monoid/binary operators."""


class SparseFormatError(ReproError):
    """A sparse kernel received indices or values that violate its format."""


class ExpressionError(ReproError):
    """Invalid construction or evaluation of a lazy :mod:`repro.assoc.expr` expression."""


class ShapeInferenceError(ExpressionError):
    """Static shape/dtype inference rejected an expression tree.

    Raised by :func:`repro.staticcheck.shapes.infer` (and therefore by
    :meth:`repro.assoc.planner.Plan.typecheck`) with a dotted *path* naming
    the offending subtree, e.g. ``mxm.left.union[2]``.
    """

    def __init__(self, message: str, *, path: str = "expr") -> None:
        super().__init__(f"{path}: {message}")
        self.path = path
        self.message = message


class StaticCheckError(ReproError):
    """The :mod:`repro.staticcheck` framework was misused (unparseable file,
    unknown rule code, malformed baseline document)."""


class RuntimeConfigError(ReproError):
    """Invalid :mod:`repro.runtime` configuration (workers, backend, blocks)."""


class WorkerCrashError(ReproError):
    """A pool worker died mid-task (segfault, ``os._exit``, OOM kill).

    Raised in place of the opaque ``BrokenProcessPool`` so the failure names
    the work that was in flight; the broken pool is evicted from the executor
    cache, so the next dispatch gets a fresh, usable pool.
    """

    def __init__(self, message: str, *, label: str = "", task_index: int | None = None) -> None:
        super().__init__(message)
        self.label = label
        self.task_index = task_index


class SharedMemoryError(ReproError):
    """The shared-memory operand plane was misused (stale segment, attach
    failure, double release)."""


class ObservabilityError(ReproError):
    """The :mod:`repro.obs` registry or tracer was misused (metric kind
    mismatch, malformed span dump, bad capacity)."""


class AssocArrayError(ReproError):
    """Invalid operation on an :class:`~repro.assoc.AssociativeArray`."""


class StoreError(ReproError):
    """Invalid use of the durable scenario store (:mod:`repro.store`):
    bad root directory, malformed blob framing, unsupported schema version,
    or lock contention that outlived every retry."""


class StoreIntegrityError(StoreError):
    """A stored artefact failed its integrity check: blob checksum mismatch,
    an index row whose blob is missing, or a digest that disagrees with the
    index.  Raised loudly — a store must never serve bytes it cannot vouch
    for."""


class ScenarioError(ReproError):
    """Invalid use of the :mod:`repro.scenarios` registry or batch API."""


class ScenarioSpecError(ScenarioError):
    """A :class:`~repro.scenarios.ScenarioSpec` document is malformed."""


class ScenarioServiceError(ScenarioError):
    """Invalid use of the :class:`~repro.scenarios.ScenarioService` front end
    (not started, saturated queue, bad configuration)."""


class ModuleSchemaError(ReproError):
    """A learning-module JSON document does not satisfy the schema."""

    def __init__(self, message: str, *, path: str = "$") -> None:
        super().__init__(f"{path}: {message}")
        self.path = path
        self.message = message


class ModuleLoadError(ReproError):
    """A learning-module file or bundle could not be read."""


class EngineError(ReproError):
    """Scene-tree or node lifecycle violation in :mod:`repro.engine`."""


class NodePathError(EngineError):
    """A node path (``$\"../Data\"`` style) did not resolve."""


class SignalError(EngineError):
    """Connecting or emitting an unknown signal."""


class ResourceError(EngineError):
    """A ``preload``-style resource path could not be resolved."""


class GDScriptError(ReproError):
    """Base class for GDScript front-end errors."""

    def __init__(self, message: str, *, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class GDScriptSyntaxError(GDScriptError):
    """Tokenizer or parser rejected the script."""


class GDScriptRuntimeError(GDScriptError):
    """The interpreter hit an error while executing a script."""


class VoxelError(ReproError):
    """Invalid voxel-model construction or serialization."""


class RenderError(ReproError):
    """The software rasterizer was configured inconsistently."""


class GameError(ReproError):
    """Game-flow violation (answering a closed question, bad level index, ...)."""


class QuizError(GameError):
    """Quiz-specific failures (no question, out-of-range answer index)."""
