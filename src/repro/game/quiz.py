"""The quiz flow: presenting a module's question and judging answers.

Presentation shuffles the answer order ("the first element will not always be
the first option given"); judging is by *position in the presented order*, so
a student's "option 2" means what they saw.  Obfuscated questions (hash form)
are judged by re-hashing the chosen text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuizError
from repro.modules.module import LearningModule, Question
from repro.modules.obfuscate import verify_answer

__all__ = ["QuizPresentation", "AnswerResult", "present_question", "judge_answer"]


@dataclass(frozen=True)
class QuizPresentation:
    """One question as shown to the student: shuffled options plus the hint."""

    module_name: str
    text: str
    options: tuple[str, ...]
    hint: str | None
    correct_index: int | None  # None when the module is obfuscated
    seed: int | None

    def option_lines(self) -> list[str]:
        return [f"  {k + 1}) {opt}" for k, opt in enumerate(self.options)]


@dataclass(frozen=True)
class AnswerResult:
    """The verdict for one answered question."""

    correct: bool
    chosen: str
    correct_answer: str | None  # None when obfuscated and answered wrong


def present_question(module: LearningModule, *, seed: int | None = None) -> QuizPresentation:
    """Shuffle and package a module's question for display.

    Raises :class:`~repro.errors.QuizError` when the module's question is
    toggled off — callers decide whether that means "skip" (class discussion)
    or a bug.
    """
    if module.question is None:
        raise QuizError(f"module {module.name!r} has its question toggled off")
    q = module.question
    options, correct_index = q.shuffled_answers(seed)
    return QuizPresentation(
        module_name=module.name,
        text=q.text,
        options=tuple(options),
        hint=q.hint,
        correct_index=correct_index,
        seed=seed,
    )


def judge_answer(question: Question, presentation: QuizPresentation, choice: int) -> AnswerResult:
    """Judge a 0-based *choice* into the presented options."""
    if not 0 <= choice < len(presentation.options):
        raise QuizError(
            f"choice {choice + 1} out of range; question has "
            f"{len(presentation.options)} options"
        )
    chosen = presentation.options[choice]
    correct = verify_answer(question, chosen)
    correct_text: str | None
    if question.is_obfuscated:
        correct_text = chosen if correct else None
    else:
        correct_text = question.correct_answer
    return AnswerResult(correct=correct, chosen=chosen, correct_answer=correct_text)
