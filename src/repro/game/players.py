"""Simulated students: measurable stand-ins for classroom play-testing.

The paper evaluates by classroom delivery; without human subjects, outcome
experiments here use scripted players with distinct policies:

* :class:`PerfectPlayer` — always right: the score ceiling,
* :class:`RandomPlayer` — uniform guessing: the 1/3 floor the three-option
  design implies,
* :class:`AnalystPlayer` — answers the way the modules *teach*: classify the
  displayed pattern (:mod:`repro.graphs.classify`) and pick the option whose
  text matches; guess only when analysis fails.

The analyst-vs-random gap measures whether the module content is actually
answerable from the matrix — the property every new module should keep.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.game.quiz import QuizPresentation
from repro.graphs.classify import (
    classify_graph_pattern,
    classify_scenario,
    classify_topology,
)
from repro.modules.library import DISPLAY_NAMES
from repro.modules.module import LearningModule

__all__ = ["Player", "PerfectPlayer", "RandomPlayer", "AnalystPlayer"]


class Player(Protocol):
    """A quiz-answering policy."""

    name: str

    def choose(self, module: LearningModule, presentation: QuizPresentation) -> int:
        """Return the 0-based index of the presented option to answer."""
        ...  # pragma: no cover


class PerfectPlayer:
    """Always selects the correct option (requires unobfuscated modules)."""

    name = "perfect"

    def choose(self, module: LearningModule, presentation: QuizPresentation) -> int:
        if presentation.correct_index is None:
            raise ValueError("PerfectPlayer cannot play obfuscated modules")
        return presentation.correct_index


class RandomPlayer:
    """Uniform random guessing — expected score 1/3 on three-option items."""

    def __init__(self, seed: int = 0) -> None:
        self.name = "random"
        self._rng = random.Random(seed)

    def choose(self, module: LearningModule, presentation: QuizPresentation) -> int:
        return self._rng.randrange(len(presentation.options))


class AnalystPlayer:
    """Answers by reading the matrix, the way the modules teach students to.

    Runs all three classifiers over the module's matrix, maps the recognised
    pattern to its display name, and picks the option containing that name.
    Counting questions ("How many packets did WS1 send to ADV4?") are parsed
    and answered by an actual matrix lookup.
    """

    def __init__(self, seed: int = 0) -> None:
        self.name = "analyst"
        self._rng = random.Random(seed)

    def choose(self, module: LearningModule, presentation: QuizPresentation) -> int:
        idx = self._by_counting(module, presentation)
        if idx is None:
            idx = self._by_firewall(module, presentation)
        if idx is None:
            idx = self._by_classification(module, presentation)
        if idx is None:
            idx = self._rng.randrange(len(presentation.options))
        return idx

    # -- strategies ----------------------------------------------------- #

    def _by_counting(self, module: LearningModule, pres: QuizPresentation) -> int | None:
        """Handle "How many packets did X send to Y?" by reading the cell."""
        words = pres.text.replace("?", " ").split()
        labels = [w.upper() for w in words if w.upper() in module.matrix.labels]
        if "packets" not in pres.text.lower() or len(labels) < 2:
            return None
        count = str(module.matrix[labels[0], labels[1]])
        for k, option in enumerate(pres.options):
            if option.strip() == count:
                return k
        return None

    def _by_firewall(self, module: LearningModule, pres: QuizPresentation) -> int | None:
        """Handle "how many flows violate the ... policy?" by running the
        default perimeter policy over the displayed matrix."""
        if "violate" not in pres.text.lower() or "polic" not in pres.text.lower():
            return None
        from repro.graphs.firewall import default_policy, violations

        try:
            policy = default_policy(module.matrix.labels)
            count = str(len(violations(module.matrix, policy)))
        except Exception:
            return None
        for k, option in enumerate(pres.options):
            if option.strip() == count:
                return k
        return None

    def _by_classification(self, module: LearningModule, pres: QuizPresentation) -> int | None:
        matrix = module.matrix
        candidates: list[str] = []
        graph = classify_graph_pattern(matrix)
        if graph != "unknown":
            candidates.append(graph)
        topo = classify_topology(matrix)
        if topo != "unknown":
            candidates.append(topo)
        scenario = classify_scenario(matrix)
        # the scenario classifier always has a best guess; trust it only when
        # its score clears the obviously-wrong level
        if scenario.scores[scenario.best] >= 0.5:
            candidates.append(scenario.best)
        for cand in candidates:
            display = DISPLAY_NAMES.get(cand, cand).lower()
            for k, option in enumerate(pres.options):
                if display == option.lower() or display in option.lower():
                    return k
        return None
