"""Traffic Warehouse: the top-level game application.

Ties everything together: a module sequence (built-in catalogue, a single
JSON, or a zip bundle) presented one at a time through
:class:`~repro.game.session.GameSession`, each rendered as a warehouse level
with the 2-D/3-D/rotate controls, plus the quiz flow.

Two ways to drive it:

* **interactively** — ``traffic-warehouse [bundle.zip]`` runs a terminal
  loop (SPACE/Q/E/1-3/n/p/h as in :data:`repro.engine.input.ACTIONS`),
* **programmatically** — :meth:`TrafficWarehouse.handle_action` consumes the
  same actions headlessly; :meth:`TrafficWarehouse.autoplay` runs a scripted
  player through every question (the quiz-outcome experiments).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.engine.input import ACTIONS, Key, action_for_key
from repro.errors import GameError, QuizError
from repro.game.players import Player
from repro.game.quiz import AnswerResult
from repro.game.session import GameSession, SessionReport
from repro.game.warehouse import WarehouseLevel
from repro.modules.library import builtin_catalog
from repro.modules.loader import load_bundle, load_module
from repro.modules.module import LearningModule
from repro.render.camera import ViewMode

__all__ = ["TrafficWarehouse", "main"]


class TrafficWarehouse:
    """The game: a session of modules, one live warehouse level at a time."""

    def __init__(
        self,
        modules: Sequence[LearningModule] | None = None,
        *,
        seed: int | None = 0,
        place_packets: bool = True,
    ) -> None:
        mods = list(modules) if modules is not None else list(builtin_catalog().values())
        self.session = GameSession(mods, seed=seed)
        self.place_packets = place_packets
        self.level = self._make_level()
        self.last_answer: AnswerResult | None = None

    # -- loading --------------------------------------------------------- #

    @classmethod
    def from_path(cls, path: str | Path, **kwargs) -> "TrafficWarehouse":
        """Load a ``.json`` module or a ``.zip`` bundle into a game.

        Curriculum bundles (zips carrying a ``curriculum.json`` manifest) are
        played in prerequisite order; plain bundles in sorted-name order.
        """
        path = Path(path)
        if path.suffix.lower() == ".zip":
            import zipfile

            with zipfile.ZipFile(path) as zf:
                has_manifest = "curriculum.json" in zf.namelist()
            if has_manifest:
                from repro.modules.curriculum import load_curriculum_bundle

                return cls(load_curriculum_bundle(path).flatten(), **kwargs)
            return cls(load_bundle(path), **kwargs)
        return cls([load_module(path)], **kwargs)

    def _make_level(self) -> WarehouseLevel:
        level = WarehouseLevel(self.session.current)
        if self.place_packets:
            level.place_all_packets()
        return level

    # -- the action interface --------------------------------------------- #

    def handle_key(self, key: Key) -> str | None:
        """Translate a key through the action map and handle it."""
        action = action_for_key(key)
        if action is None:
            return None
        return self.handle_action(action)

    def handle_action(self, action: str) -> str:
        """Perform one game action; returns a short status line."""
        if action not in ACTIONS:
            raise GameError(f"unknown action {action!r}; available: {sorted(ACTIONS)}")
        if action == "toggle_view":
            mode = self.level.toggle_view()
            return f"view: {'3D warehouse' if mode is ViewMode.ISOMETRIC_3D else '2D top-down'}"
        if action == "rotate_left":
            return f"rotated to step {self.level.rotate_left()}/8"
        if action == "rotate_right":
            return f"rotated to step {self.level.rotate_right()}/8"
        if action in ("answer_1", "answer_2", "answer_3"):
            choice = int(action[-1]) - 1
            result = self.session.answer(choice)
            self.last_answer = result
            verdict = "correct!" if result.correct else (
                f"wrong — the answer was {result.correct_answer!r}"
                if result.correct_answer is not None
                else "wrong"
            )
            return f"{result.chosen!r}: {verdict}"
        if action == "next_module":
            self.session.next_module()
            self.level = self._make_level()
            return f"module {self.session.index + 1}/{len(self.session.modules)}: {self.current.name}"
        if action == "prev_module":
            self.session.prev_module()
            self.level = self._make_level()
            return f"module {self.session.index + 1}/{len(self.session.modules)}: {self.current.name}"
        if action == "hint":
            if self.session.has_question():
                hint = self.session.presentation().hint
                return hint if hint else "no hint for this question"
            return "no question on this module"
        if action == "confirm":
            return "ready"
        if action == "quit":
            return "quit"
        raise GameError(f"unhandled action {action!r}")  # pragma: no cover

    @property
    def current(self) -> LearningModule:
        return self.session.current

    # -- screens ------------------------------------------------------------ #

    def render_screen(self, *, ansi: bool = True, width: int = 100, height: int = 32) -> str:
        """The full game screen: header, view, and the question block."""
        from repro.render.ascii2d import render_matrix_2d

        module = self.current
        lines = [
            f"═══ Traffic Warehouse ═══  module {self.session.index + 1}/"
            f"{len(self.session.modules)}: {module.name}  [{module.size}] by {module.author}",
        ]
        if self.level.camera.mode is ViewMode.TOP_DOWN_2D:
            lines.append(render_matrix_2d(module.matrix, ansi=ansi))
        else:
            buf = self.level.render_ascii(width=width, height=height)
            lines.append(buf.to_ansi() if ansi else buf.to_plain())
        if self.session.has_question() and not self.session.already_answered():
            pres = self.session.presentation()
            lines.append("")
            lines.append(pres.text)
            lines.extend(pres.option_lines())
            lines.append("(answer with 1-3, h for a hint)")
        elif self.session.already_answered() and self.last_answer is not None:
            lines.append("answered: " + ("correct!" if self.last_answer.correct else "wrong"))
        lines.append("[SPACE] 2D/3D  [Q/E] rotate  [n/p] next/prev  [esc] quit")
        return "\n".join(lines)

    # -- autoplay (experiments) ------------------------------------------------ #

    def autoplay(self, player: Player) -> SessionReport:
        """Run *player* through every module with a question, then report."""
        while True:
            if self.session.has_question() and not self.session.already_answered():
                pres = self.session.presentation()
                choice = player.choose(self.current, pres)
                self.session.answer(choice)
            if self.session.is_last():
                break
            self.session.next_module()
        return self.session.report()


def main(argv: Sequence[str] | None = None, stdin: TextIO | None = None, stdout: TextIO | None = None) -> int:
    """CLI entry point: ``traffic-warehouse [module.json | bundle.zip]``.

    Reads single-character commands per line (the keys of the action map).
    Runs on plain pipes, so classroom demos can be scripted:
    ``printf 'n\\n1\\nq\\n' | traffic-warehouse``.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    try:
        game = TrafficWarehouse.from_path(argv[0]) if argv else TrafficWarehouse()
    except Exception as exc:  # a CLI reports, not tracebacks
        print(f"error: {exc}", file=stdout)
        return 2
    key_by_char = {k.value: k for k in Key}
    key_by_char[" "] = Key.SPACE
    key_by_char[""] = Key.ENTER
    print(game.render_screen(ansi=stdout.isatty()), file=stdout)
    for raw in stdin:
        ch = raw.rstrip("\n").strip().lower() or " "
        if ch in ("quit", "exit", "q!"):
            break
        key = key_by_char.get(ch)
        if key is None:
            print(f"unknown key {ch!r} (try space/q/e/1/2/3/n/p/h, or 'quit')", file=stdout)
            continue
        try:
            status = game.handle_key(key)
        except QuizError as exc:
            print(f"! {exc}", file=stdout)
            continue
        if status == "quit":
            break
        print(game.render_screen(ansi=stdout.isatty()), file=stdout)
        if status:
            print(f"-- {status}", file=stdout)
    report = game.session.report()
    if report.questions_asked:
        print(report.summary(), file=stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
