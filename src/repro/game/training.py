"""The built-in training level (paper Fig. 5).

"There is a single built-in module in Traffic Warehouse and that is the
training level.  This module walks the player through what a traffic matrix
is, how to read one, how it is of value to them, and how it will be
represented in the game environment.  The training module also provides a
space for the player to learn the controls of the game without needing to
load in a learning module."

The walkthrough is a fixed step sequence; each step shows a prompt and may
require a control input (SPACE/Q/E) before advancing — the "learn the
controls" part.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GameError
from repro.game.warehouse import WarehouseLevel
from repro.modules.library import builtin_catalog
from repro.modules.module import LearningModule

__all__ = ["TrainingStep", "TRAINING_STEPS", "TrainingLevel", "training_module"]


@dataclass(frozen=True)
class TrainingStep:
    """One walkthrough step: prompt text plus the action that advances it."""

    title: str
    prompt: str
    requires_action: str | None = None  # an ACTIONS key, or None for "press on"


TRAINING_STEPS: tuple[TrainingStep, ...] = (
    TrainingStep(
        "What is a traffic matrix?",
        "A network traffic matrix records how much information each source "
        "sends to each destination: the entry at row i, column j counts the "
        "packets sent from endpoint i to endpoint j.",
    ),
    TrainingStep(
        "Reading the 2-D view",
        "You are looking at the matrix top-down, like a spreadsheet. Row "
        "labels name the sources, column labels the destinations. Find WS1's "
        "row and follow it to the ADV4 column.",
    ),
    TrainingStep(
        "Why it matters",
        "Network security personnel read these patterns daily: a filled row "
        "is a busy sender, a filled column a popular destination, and traffic "
        "touching adversary space deserves a second look.",
    ),
    TrainingStep(
        "The warehouse",
        "In the game each matrix cell is a shipping pallet on the warehouse "
        "floor, and each packet is a box on that pallet. Press SPACE to step "
        "into the 3-D warehouse view.",
        requires_action="toggle_view",
    ),
    TrainingStep(
        "Looking around",
        "Rotate the warehouse with Q and E to see the box stacks from any "
        "side. Press Q or E now.",
        requires_action="rotate_left",
    ),
    TrainingStep(
        "Colour coding",
        "Pallets can be coloured to mark network spaces: blue for your own "
        "systems, red for adversary space, grey for everything else. The "
        "colour toggle repaints every pallet from the module's colour grid.",
    ),
    TrainingStep(
        "Your first question",
        "Each learning module may end with a three-choice question. Answer "
        "by choosing an option; a hint may point at an external resource.",
    ),
)


def training_module() -> LearningModule:
    """The training lesson content (the 10×10 template with its question)."""
    return builtin_catalog()["training/training"]


class TrainingLevel:
    """The training walkthrough wrapped around a warehouse level."""

    def __init__(self) -> None:
        self.level = WarehouseLevel(training_module())
        self.step_index = 0
        self.completed = False

    @property
    def current_step(self) -> TrainingStep:
        if self.completed:
            raise GameError("training is already complete")
        return TRAINING_STEPS[self.step_index]

    def advance(self, action: str | None = None) -> bool:
        """Advance the walkthrough; steps that require an action only advance
        when that action (or its rotate twin) is supplied.  Returns True if
        the step changed."""
        if self.completed:
            return False
        step = self.current_step
        if step.requires_action is not None:
            rotate_pair = {"rotate_left", "rotate_right"}
            wanted = (
                rotate_pair if step.requires_action in rotate_pair else {step.requires_action}
            )
            if action not in wanted:
                return False
            # actually perform the control on the level so the view matches
            if action == "toggle_view":
                self.level.toggle_view()
            elif action == "rotate_left":
                self.level.rotate_left()
            elif action == "rotate_right":
                self.level.rotate_right()
        self.step_index += 1
        if self.step_index >= len(TRAINING_STEPS):
            self.completed = True
        return True

    def progress(self) -> tuple[int, int]:
        return (len(TRAINING_STEPS) if self.completed else self.step_index, len(TRAINING_STEPS))
