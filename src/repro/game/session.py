"""A play-through: a module sequence with navigation, answers, and scoring.

"Traffic Warehouse will take the zip file and load each of the JSON files
contained in it and present them sequentially one at a time."  A
:class:`GameSession` is that sequence plus the student's progress: which
module is showing, what has been answered, and the running score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import GameError, QuizError
from repro.game.quiz import AnswerResult, QuizPresentation, judge_answer, present_question
from repro.modules.module import LearningModule

__all__ = ["GameSession", "SessionReport", "AnsweredQuestion"]


@dataclass(frozen=True)
class AnsweredQuestion:
    """One answered question in the session log."""

    module_name: str
    presentation: QuizPresentation
    choice: int
    result: AnswerResult


@dataclass(frozen=True)
class SessionReport:
    """End-of-session summary."""

    total_modules: int
    questions_asked: int
    correct: int
    answers: tuple[AnsweredQuestion, ...] = field(default=())

    @property
    def score_fraction(self) -> float:
        return self.correct / self.questions_asked if self.questions_asked else 0.0

    def summary(self) -> str:
        pct = 100.0 * self.score_fraction
        return (
            f"{self.correct}/{self.questions_asked} questions correct "
            f"({pct:.0f}%) across {self.total_modules} modules"
        )


class GameSession:
    """Sequential presentation of modules with per-module quiz state."""

    def __init__(self, modules: Sequence[LearningModule], *, seed: int | None = None) -> None:
        if not modules:
            raise GameError("a session needs at least one module")
        self.modules = list(modules)
        self.seed = seed
        self.index = 0
        self._answers: list[AnsweredQuestion] = []
        self._answered_modules: set[int] = set()
        self._presentations: dict[int, QuizPresentation] = {}

    # -- navigation -------------------------------------------------------- #

    @property
    def current(self) -> LearningModule:
        return self.modules[self.index]

    def next_module(self) -> LearningModule:
        """Advance (stops at the last module rather than wrapping)."""
        if self.index < len(self.modules) - 1:
            self.index += 1
        return self.current

    def prev_module(self) -> LearningModule:
        if self.index > 0:
            self.index -= 1
        return self.current

    def is_last(self) -> bool:
        return self.index == len(self.modules) - 1

    # -- quiz -------------------------------------------------------------- #

    def presentation(self) -> QuizPresentation:
        """The current module's shuffled question (stable within the session).

        The shuffle is drawn once per module: revisiting a module shows the
        same option order the student first saw, like the real game screen.
        """
        if self.index not in self._presentations:
            per_module_seed = None if self.seed is None else self.seed * 1000 + self.index
            self._presentations[self.index] = present_question(self.current, seed=per_module_seed)
        return self._presentations[self.index]

    def has_question(self) -> bool:
        return self.current.has_question

    def already_answered(self) -> bool:
        return self.index in self._answered_modules

    def answer(self, choice: int) -> AnswerResult:
        """Answer the current module's question (0-based presented index).

        Each question accepts one answer per session — the game scores first
        attempts.
        """
        if not self.has_question():
            raise QuizError(f"module {self.current.name!r} has no question to answer")
        if self.already_answered():
            raise QuizError(f"module {self.current.name!r} was already answered")
        pres = self.presentation()
        result = judge_answer(self.current.question, pres, choice)  # type: ignore[arg-type]
        self._answers.append(
            AnsweredQuestion(
                module_name=self.current.name, presentation=pres, choice=choice, result=result
            )
        )
        self._answered_modules.add(self.index)
        return result

    # -- reporting ----------------------------------------------------------- #

    @property
    def score(self) -> int:
        return sum(1 for a in self._answers if a.result.correct)

    def report(self) -> SessionReport:
        return SessionReport(
            total_modules=len(self.modules),
            questions_asked=len(self._answers),
            correct=self.score,
            answers=tuple(self._answers),
        )
