"""The warehouse level: a learning module materialised as a scene.

"Traffic Warehouse presents a stylized shipping warehouse where each entry in
the traffic matrix is represented as a grid of shipping pallets on the
warehouse floor that can be loaded with boxes (packets) to be shipped."

:func:`build_level` constructs the scene tree of Fig. 2 — Data node, floor,
pallet grid, X/Y label rows — wires the exported node references the way the
Inspector does (Fig. 3/4), and attaches the paper's pallet-and-label
controller script, which then runs at ``_ready`` exactly as in the game.
:class:`WarehouseLevel` wraps the scene with game actions: placing packet
boxes, toggling pallet colours, switching and rotating the view.
"""

from __future__ import annotations

import numpy as np

from repro.engine.inspector import set_export
from repro.engine.math3d import Vector3
from repro.engine.node import Label3D, MeshInstance3D, Node3D
from repro.engine.tree import SceneTree
from repro.errors import GameError
from repro.gdscript.interpreter import GDScriptClass
from repro.modules.module import LearningModule
from repro.render.camera import OrthoCamera, ViewMode
from repro.render.raster import CharBuffer
from repro.render.scene import render_scene_ascii, render_scene_pixels
from repro.game.scripts import PALLET_CONTROLLER_GD

__all__ = ["build_level", "WarehouseLevel", "PALLET_SPACING"]

#: World-units between pallet centres on the floor grid.
PALLET_SPACING = 1.25

#: World height of the pallet deck (3 voxels at 1/8 unit).
_PALLET_TOP = 3.0 / 8.0

#: Packet boxes are half a unit tall/wide (4 voxels).
_BOX_SIZE = 0.5

_controller_class: GDScriptClass | None = None


def _controller() -> GDScriptClass:
    """Compile the paper's controller script once and share it."""
    global _controller_class
    if _controller_class is None:
        _controller_class = GDScriptClass.compile(PALLET_CONTROLLER_GD)
    return _controller_class


def _label_row(name: str, count: int, position_of) -> Node3D:  # noqa: ANN001
    """A row of label holders, each [Stand mesh, Text label] (Fig. 4)."""
    row = Node3D(name)
    for k in range(count):
        holder = Node3D(f"Label{k}")
        holder.position = position_of(k)
        holder.add_child(MeshInstance3D("Stand", mesh="label_stand"))
        holder.add_child(Label3D("Text"))
        row.add_child(holder)
    return row


def build_level(module: LearningModule) -> Node3D:
    """Construct the level scene for a module (not yet inside a tree).

    The returned root has the Fig. 2 shape::

        Level
        ├─ Data                        (carries the module JSON as .data)
        ├─ Floor
        └─ PalletAndLabelController    (paper script attached)
           ├─ X   (label holders along the top edge)
           ├─ Y   (label holders along the left edge)
           └─ Pallets  (n*n pallet nodes, row-major)

    Export variables are wired before the scene enters a tree, so the
    script's ``@onready`` lines see exactly what they would in Godot.
    """
    n = module.matrix.n
    root = Node3D("Level")

    data = Node3D("Data")
    data.data = module.to_json_dict()  # type: ignore[attr-defined]
    root.add_child(data)

    floor = MeshInstance3D("Floor", mesh="floor_tile")
    floor.scale = float(n) * PALLET_SPACING
    floor.position = Vector3((n - 1) * PALLET_SPACING / 2, -0.15, (n - 1) * PALLET_SPACING / 2)
    root.add_child(floor)

    controller = Node3D("PalletAndLabelController")
    root.add_child(controller)

    x_row = _label_row("X", n, lambda k: Vector3(k * PALLET_SPACING, 0.0, -PALLET_SPACING))
    y_row = _label_row("Y", n, lambda k: Vector3(-PALLET_SPACING, 0.0, k * PALLET_SPACING))
    pallets = Node3D("Pallets")
    for i in range(n):          # rows: sources, stepping +z
        for j in range(n):      # cols: destinations, stepping +x
            pallet = Node3D(f"Pallet{i * n + j}")
            pallet.position = Vector3(j * PALLET_SPACING, 0.0, i * PALLET_SPACING)
            pallet.add_child(MeshInstance3D("Mesh", mesh="pallet"))
            pallet.add_child(Node3D("Boxes"))
            pallets.add_child(pallet)
    controller.add_child(x_row)
    controller.add_child(y_row)
    controller.add_child(pallets)

    _controller().instantiate(controller)
    controller.export_var("y_axis", None, "Node3D")
    controller.export_var("x_axis", None, "Node3D")
    controller.export_var("pallets", None, "Node3D")
    set_export(controller, "y_axis", y_row)
    set_export(controller, "x_axis", x_row)
    set_export(controller, "pallets", pallets)
    return root


class WarehouseLevel:
    """A running level: scene + camera + game actions for one module."""

    def __init__(self, module: LearningModule, *, tree: SceneTree | None = None) -> None:
        self.module = module
        self.root = build_level(module)
        self.tree = tree if tree is not None else SceneTree()
        if self.tree.root is None:
            self.tree.set_root(self.root)
        else:
            self.tree.change_scene(self.root)
        self.camera = OrthoCamera(mode=ViewMode.TOP_DOWN_2D)
        self._placed = 0

    # -- scene queries ------------------------------------------------------ #

    @property
    def controller(self) -> Node3D:
        return self.root.get_node("PalletAndLabelController")  # type: ignore[return-value]

    def pallet(self, i: int, j: int) -> Node3D:
        n = self.module.matrix.n
        if not (0 <= i < n and 0 <= j < n):
            raise GameError(f"pallet ({i}, {j}) outside the {n}x{n} floor")
        return self.controller.get_node(f"Pallets/Pallet{i * n + j}")  # type: ignore[return-value]

    def x_labels(self) -> list[str]:
        row = self.controller.get_node("X")
        return [holder.get_child(1).text for holder in row.get_children()]  # type: ignore[attr-defined]

    def y_labels(self) -> list[str]:
        row = self.controller.get_node("Y")
        return [holder.get_child(1).text for holder in row.get_children()]  # type: ignore[attr-defined]

    @property
    def pallets_are_colored(self) -> bool:
        return bool(self.controller.script.get_var("pallets_are_colored"))

    # -- game actions --------------------------------------------------------- #

    def toggle_pallet_colors(self) -> bool:
        """The colour-toggle button: runs the paper's ``change_pallet_color``."""
        self.controller.script.call("change_pallet_color")
        return self.pallets_are_colored

    def place_all_packets(self) -> int:
        """Load every packet box onto its pallet (Fig. 5c's end state)."""
        return self.place_packets(self.module.matrix.total_packets())

    def place_packets(self, count: int) -> int:
        """Place up to *count* further boxes, row-major cell order, stacking
        2×2 per layer on each pallet.  Returns the total placed so far."""
        matrix = self.module.matrix
        n = matrix.n
        flat = matrix.packets.ravel()
        target = min(self._placed + max(0, count), int(flat.sum()))
        placed = 0
        for cell in range(n * n):
            for k in range(int(flat[cell])):
                placed += 1
                if placed <= self._placed:
                    continue
                if placed > target:
                    return self._finish_placement(target)
                i, j = divmod(cell, n)
                boxes = self.pallet(i, j).get_node("Boxes")
                layer, slot = divmod(k, 4)
                dx = (slot % 2) * _BOX_SIZE - _BOX_SIZE / 2
                dz = (slot // 2) * _BOX_SIZE - _BOX_SIZE / 2
                box = MeshInstance3D(f"Box{k}", mesh="packet_box")
                box.position = Vector3(dx, _PALLET_TOP + layer * _BOX_SIZE, dz)
                boxes.add_child(box)
        return self._finish_placement(target)

    def _finish_placement(self, target: int) -> int:
        self._placed = target
        return self._placed

    @property
    def packets_placed(self) -> int:
        return self._placed

    def all_packets_placed(self) -> bool:
        return self._placed == self.module.matrix.total_packets()

    # -- view controls ----------------------------------------------------------- #

    def toggle_view(self) -> ViewMode:
        """SPACE: 2-D ↔ 3-D."""
        return self.camera.toggle_mode()

    def rotate_left(self) -> int:
        """Q."""
        return self.camera.rotate_left()

    def rotate_right(self) -> int:
        """E."""
        return self.camera.rotate_right()

    def render_ascii(self, *, width: int = 100, height: int = 36) -> CharBuffer:
        """Current view as a character frame (3-D scene raster)."""
        return render_scene_ascii(self.root, self.camera, width=width, height=height)

    def render_pixels(self, *, width: int = 480, height: int = 360) -> np.ndarray:
        """Current view as an RGB frame (for PPM screenshots)."""
        return render_scene_pixels(self.root, self.camera, width=width, height=height)
