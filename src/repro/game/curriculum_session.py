"""Playing a hierarchical curriculum: unit-by-unit progression with gating.

Wraps :class:`~repro.modules.curriculum.Curriculum` in game terms: the student
plays one unlocked unit at a time as a normal :class:`GameSession`; finishing
a unit records pass/fail against the unit's ``pass_score``, and passing
unlocks whatever required it.  Failed units can be retried (a fresh session,
freshly shuffled answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import GameError
from repro.game.session import GameSession
from repro.modules.curriculum import Curriculum, Unit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ScenarioSpec

__all__ = ["UnitResult", "CurriculumSession"]


@dataclass(frozen=True)
class UnitResult:
    """Outcome of one unit attempt."""

    unit_title: str
    correct: int
    questions: int
    passed: bool


class CurriculumSession:
    """Progress state over a curriculum: unlocked units, attempts, passes."""

    def __init__(self, curriculum: Curriculum, *, seed: int | None = 0) -> None:
        self.curriculum = curriculum
        self.seed = seed
        self._passed: list[str] = []
        self._attempts: list[UnitResult] = []
        self._active_unit: Unit | None = None
        self._active_session: GameSession | None = None

    @classmethod
    def from_specs(
        cls,
        units: Mapping[str, Sequence["ScenarioSpec"]],
        *,
        title: str = "Scenario Curriculum",
        pass_score: float = 0.5,
        sequential: bool = True,
        seed: int | None = 0,
        workers: int | None = None,
    ) -> "CurriculumSession":
        """A playable curriculum generated from declarative scenario specs.

        ``units`` maps unit titles to the :class:`~repro.scenarios.ScenarioSpec`
        lists that become their modules; every matrix is realised in one
        :func:`~repro.scenarios.generate_batch` call, so a wide curriculum
        generates in parallel when ``workers`` (or the process-wide
        :func:`repro.runtime.configure`) enables it.  With ``sequential``
        (default) each unit requires the previous one, giving the
        unlock-in-order progression of the paper's hierarchical-modules
        future work.
        """
        from repro.modules.builder import scenario_module
        from repro.scenarios import generate_batch

        flat: list[tuple[str, "ScenarioSpec"]] = [
            (unit_title, spec) for unit_title, specs in units.items() for spec in specs
        ]
        matrices = generate_batch([spec for _, spec in flat], workers=workers)
        modules: dict[str, list] = {unit_title: [] for unit_title in units}
        for (unit_title, spec), matrix in zip(flat, matrices):
            number = len(modules[unit_title]) + 1
            modules[unit_title].append(
                scenario_module(spec, matrix=matrix, name=f"{unit_title} #{number}")
            )
        children: list[Unit] = []
        for unit_title in units:
            children.append(
                Unit(
                    title=unit_title,
                    modules=tuple(modules[unit_title]),
                    requires=(children[-1].title,) if sequential and children else (),
                    pass_score=pass_score,
                )
            )
        curriculum = Curriculum(Unit(title=title, children=tuple(children)))
        return cls(curriculum, seed=seed)

    # ------------------------------------------------------------------ #
    # unit selection
    # ------------------------------------------------------------------ #

    @property
    def passed_units(self) -> tuple[str, ...]:
        return tuple(self._passed)

    @property
    def attempts(self) -> tuple[UnitResult, ...]:
        return tuple(self._attempts)

    def available(self) -> list[Unit]:
        """Units the student may start now."""
        return self.curriculum.available_units(self._passed)

    def is_complete(self) -> bool:
        return not self.available() and self._active_unit is None

    def start_unit(self, title: str) -> GameSession:
        """Begin (or retry) an unlocked unit; returns its game session.

        Units without modules (pure grouping nodes) pass immediately.
        """
        if self._active_unit is not None:
            raise GameError(
                f"unit {self._active_unit.title!r} is still in progress; finish it first"
            )
        unit = self.curriculum.unit(title)
        if unit.title in self._passed:
            raise GameError(f"unit {title!r} is already passed")
        if not all(req in self._passed for req in unit.requires):
            missing = [r for r in unit.requires if r not in self._passed]
            raise GameError(f"unit {title!r} is locked; missing prerequisites: {missing}")
        if not unit.modules:
            self._passed.append(unit.title)
            self._attempts.append(UnitResult(unit.title, 0, 0, True))
            return None  # type: ignore[return-value]  # grouping unit, nothing to play
        attempt_number = sum(1 for a in self._attempts if a.unit_title == title)
        unit_seed = None if self.seed is None else hash((self.seed, title, attempt_number)) % (2**31)
        self._active_unit = unit
        self._active_session = GameSession(list(unit.modules), seed=unit_seed)
        return self._active_session

    def finish_unit(self) -> UnitResult:
        """Score the active unit's session and update progress."""
        if self._active_unit is None or self._active_session is None:
            raise GameError("no unit is in progress")
        unit = self._active_unit
        report = self._active_session.report()
        passed = self.curriculum.unit_passed(unit.title, report.correct)
        result = UnitResult(
            unit_title=unit.title,
            correct=report.correct,
            questions=unit.question_count(),
            passed=passed,
        )
        self._attempts.append(result)
        if passed:
            self._passed.append(unit.title)
        self._active_unit = None
        self._active_session = None
        return result

    def abandon_unit(self) -> None:
        """Drop the active unit without recording an attempt."""
        self._active_unit = None
        self._active_session = None

    # ------------------------------------------------------------------ #
    # autoplay (experiments / tests)
    # ------------------------------------------------------------------ #

    def autoplay(self, player, *, max_attempts_per_unit: int = 3) -> list[UnitResult]:  # noqa: ANN001
        """Drive a scripted player through the whole curriculum.

        Units are attempted in unlock order; a failed unit is retried up to
        ``max_attempts_per_unit`` times before the run stops (a student stuck
        below the pass bar is a result, not an error).
        """
        results: list[UnitResult] = []
        fail_counts: dict[str, int] = {}
        while not self.is_complete():
            unlocked = self.available()
            if not unlocked:
                break
            unit = unlocked[0]
            session = self.start_unit(unit.title)
            if session is None:  # grouping unit auto-passed
                results.append(self._attempts[-1])
                continue
            while True:
                if session.has_question() and not session.already_answered():
                    pres = session.presentation()
                    session.answer(player.choose(session.current, pres))
                if session.is_last():
                    break
                session.next_module()
            result = self.finish_unit()
            results.append(result)
            if not result.passed:
                fail_counts[unit.title] = fail_counts.get(unit.title, 0) + 1
                if fail_counts[unit.title] >= max_attempts_per_unit:
                    break
        return results
