"""The Traffic Warehouse game: levels, quiz flow, sessions, players, app."""

from repro.game.app import TrafficWarehouse, main
from repro.game.curriculum_session import CurriculumSession, UnitResult
from repro.game.players import AnalystPlayer, PerfectPlayer, Player, RandomPlayer
from repro.game.quiz import AnswerResult, QuizPresentation, judge_answer, present_question
from repro.game.scripts import HELLO_WORLD_GD, PALLET_CONTROLLER_GD
from repro.game.session import AnsweredQuestion, GameSession, SessionReport
from repro.game.training import TRAINING_STEPS, TrainingLevel, TrainingStep, training_module
from repro.game.warehouse import PALLET_SPACING, WarehouseLevel, build_level

__all__ = [
    "TrafficWarehouse",
    "main",
    "CurriculumSession",
    "UnitResult",
    "WarehouseLevel",
    "build_level",
    "PALLET_SPACING",
    "GameSession",
    "SessionReport",
    "AnsweredQuestion",
    "QuizPresentation",
    "AnswerResult",
    "present_question",
    "judge_answer",
    "TrainingLevel",
    "TrainingStep",
    "TRAINING_STEPS",
    "training_module",
    "Player",
    "PerfectPlayer",
    "RandomPlayer",
    "AnalystPlayer",
    "PALLET_CONTROLLER_GD",
    "HELLO_WORLD_GD",
]
