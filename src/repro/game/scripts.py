'''The paper's GDScript listings, as runnable source.

``PALLET_CONTROLLER_GD`` is the Section IV "Pallet and label controller"
script — the paper presents it split across several listings; here the parts
are joined back into the single file the paper says they form, with the
PDF's typographic line wraps undone.  It runs unmodified on
:mod:`repro.gdscript` against the scene built by
:mod:`repro.game.warehouse`.
'''

from __future__ import annotations

__all__ = ["PALLET_CONTROLLER_GD", "HELLO_WORLD_GD"]

#: Fig. 1c — Hello World in GDScript.
HELLO_WORLD_GD = '''\
func _ready():
	HelloWorld()

func HelloWorld():
	print("Hello, world!")
'''

#: Section IV — the pallet-and-label controller, joined from the paper's parts.
PALLET_CONTROLLER_GD = '''\
extends Node3D

@export var y_axis : Node3D
@export var x_axis : Node3D
@export var pallets : Node3D
@export var pallets_are_colored : bool = false

@onready var level_data : Node3D = $"../Data"
@onready var pallet_array : Array = pallets.get_children()

var pallet_color_array : Array = []
var pallet_default_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material.tres")
var pallet_r_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_r.tres")
var pallet_b_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_b.tres")
var pallet_g_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_g.tres")
var pallet_black_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_black.tres")

func _ready():
	for array in level_data.data["traffic_matrix_colors"]:
		pallet_color_array += array
	set_labels()

func set_labels():
	var y_labels : Array = y_axis.get_children()
	var x_labels : Array = x_axis.get_children()
	if len (y_labels) != len(x_labels):
		printerr("Number of y labels does not match number of x labels!")
	elif len (level_data.data["axis_labels"]) != len(y_labels):
		printerr("Level data does not match number of labels!")
	else:
		var c : int = 0
		for label in level_data.data["axis_labels"]:
			y_labels[c].get_child(1).text = label
			x_labels[c].get_child(1).text = label
			c += 1

func change_pallet_color():
	print("Change pallet color button")
	var c : int = 0
	if pallets_are_colored:
		print("Palets are colored! Making them default")
		for color in pallet_color_array:
			pallet_array[c].get_child(0).material_override = pallet_default_material
			c += 1
		pallets_are_colored = false
	else:
		print("Palets are default! Making them colored")
		for color in pallet_color_array:
			print("Matching color: " + str(color))
			match int(color):
				0: pallet_array[c].get_child(0).material_override = pallet_g_material
				1: pallet_array[c].get_child(0).material_override = pallet_b_material
				2: pallet_array[c].get_child(0).material_override = pallet_r_material
				_: pallet_array[c].get_child(0).material_override = pallet_black_material
			c += 1
		pallets_are_colored = true
'''
