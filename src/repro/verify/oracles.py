"""Differential-testing oracles: independent paths that must agree.

Each oracle takes one :class:`~repro.scenarios.ScenarioSpec` and returns an
:class:`OracleVerdict`.  The theme is MindOpt-style adapter-level differential
benchmarking: run the *same* workload through independent implementations
(serial vs blocked kernels, spec vs its JSON round trip, generator vs
classifier, overlay order vs its permutation) and demand agreement.  An
oracle never mutates global runtime state, so corpora can be fanned over the
process-pool executors — every oracle here is a picklable frozen dataclass.

Verdicts are three-valued: *passed*, *failed*, or *skipped* (the oracle does
not apply to this spec — e.g. the classifier oracle on a composite base).
Skips are recorded, not silently dropped, so a corpus report shows exactly
how much each oracle covered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.assoc.blocked import (
    parallel_coalesce,
    parallel_ewise_intersect,
    parallel_ewise_union,
    parallel_masked_intersect,
    parallel_masked_mxm,
    parallel_masked_mxv,
    parallel_mxm,
    parallel_mxv,
    parallel_union_all,
)
from repro.assoc.semiring import PLUS_MONOID, PLUS_TIMES, Monoid, Semiring
from repro.assoc.sparse import (
    CSRMatrix,
    _coalesce_core,
    _masked_intersect_serial,
    _masked_mxm_serial,
    _masked_mxv_serial,
    _union_all_serial,
    masked_select,
)
from repro.runtime.config import RuntimeConfig
from repro.scenarios.registry import get_generator
from repro.scenarios.spec import OverlaySpec, ScenarioSpec

__all__ = [
    "OracleVerdict",
    "Oracle",
    "KernelEqualityOracle",
    "MaskedEqualityOracle",
    "RoundTripOracle",
    "ClassifierOracle",
    "OverlayMetamorphicOracle",
    "CacheDeltaOracle",
    "StaticShapesOracle",
    "StoreRoundTripOracle",
    "default_oracles",
]


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one oracle on one spec."""

    oracle: str
    passed: bool
    skipped: bool = False
    detail: str = ""

    @property
    def failed(self) -> bool:
        return not self.passed and not self.skipped


@runtime_checkable
class Oracle(Protocol):
    """The pluggable oracle contract: a name and a pure ``check``."""

    name: str

    def check(self, spec: ScenarioSpec) -> OracleVerdict:  # pragma: no cover
        ...


def _passed(name: str, detail: str = "") -> OracleVerdict:
    return OracleVerdict(oracle=name, passed=True, detail=detail)


def _failed(name: str, detail: str) -> OracleVerdict:
    return OracleVerdict(oracle=name, passed=False, detail=detail)


def _skipped(name: str, detail: str) -> OracleVerdict:
    return OracleVerdict(oracle=name, passed=False, skipped=True, detail=detail)


def _csr_identical(a: CSRMatrix, b: CSRMatrix) -> bool:
    """Bit-identity: same shape, structure, values, and dtype."""
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


# --------------------------------------------------------------------------- #
# 1. serial vs blocked-parallel kernel equality
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class KernelEqualityOracle:
    """Serial kernels vs their row-blocked decomposition, bit for bit.

    The corpus matrix is converted to CSR and pushed through every kernel the
    blocked engine parallelises (``mxm``, ``mxv``, ``ewise_union``,
    ``ewise_intersect``, ``coalesce``) twice: once on the plain serial path
    and once through :class:`~repro.assoc.blocked.BlockedCSR` tiling with a
    deliberately tiny ``block_rows`` so every matrix splits into several
    blocks.  Results must be identical to the bit (values, structure, dtype).

    The blocked evaluation runs on a serial executor by design: the *math*
    of the tiled decomposition is what differential testing probes here, and
    keeping the oracle executor-free lets :func:`repro.verify.run_corpus`
    fan whole corpora over thread/process pools without nesting pools inside
    worker tasks.  ``semiring``/``monoid`` are injectable so a test fixture
    can plant a perturbed operator and watch this oracle catch it.
    """

    semiring: Semiring = PLUS_TIMES
    monoid: Monoid = PLUS_MONOID
    block_rows: int = 3

    name = "kernel_equality"

    def _config(self) -> RuntimeConfig:
        return RuntimeConfig(workers=1, backend="serial", block_rows=self.block_rows)

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        cfg = self._config()
        a = spec.build().to_csr()
        at = a.transpose()
        rng = np.random.default_rng(spec.seed)
        x = rng.integers(0, 5, size=a.shape[1]).astype(np.int64)

        serial_mxm = a._mxm_serial(a, self.semiring)
        blocked_mxm = parallel_mxm(a, a, self.semiring, cfg)
        if not _csr_identical(serial_mxm, blocked_mxm):
            return _failed(self.name, f"mxm serial != blocked ({self.semiring.name})")
        if self.semiring is PLUS_TIMES:
            dense_ref = a.to_dense(0) @ a.to_dense(0)
            if not np.array_equal(blocked_mxm.to_dense(0), dense_ref):
                return _failed(self.name, "mxm disagrees with dense reference")

        serial_mxv = a._mxv_serial(x, self.semiring)
        blocked_mxv = parallel_mxv(a, x, self.semiring, cfg)
        if serial_mxv.dtype != blocked_mxv.dtype or not np.array_equal(
            serial_mxv, blocked_mxv
        ):
            return _failed(self.name, f"mxv serial != blocked ({self.semiring.name})")

        serial_union = a._ewise_union_serial(at, self.monoid)
        blocked_union = parallel_ewise_union(a, at, self.monoid, cfg)
        if not _csr_identical(serial_union, blocked_union):
            return _failed(self.name, f"ewise_union serial != blocked ({self.monoid.name})")

        mult = self.semiring.mult
        serial_inter = a._ewise_intersect_serial(at, mult)
        blocked_inter = parallel_ewise_intersect(a, at, mult, cfg)
        if not _csr_identical(serial_inter, blocked_inter):
            return _failed(self.name, f"ewise_intersect serial != blocked ({mult.name})")

        rows, cols, vals = a.triples()
        rows = np.concatenate([rows, rows])
        cols = np.concatenate([cols, cols])
        vals = np.concatenate([vals, vals])
        order = rng.permutation(rows.size)
        rows, cols, vals = rows[order], cols[order], vals[order]
        s_r, s_c, s_v = _coalesce_core(rows, cols, vals, a.shape, self.monoid)
        p_r, p_c, p_v = parallel_coalesce(rows, cols, vals, a.shape, self.monoid, cfg)
        if not (
            np.array_equal(s_r, p_r)
            and np.array_equal(s_c, p_c)
            and np.array_equal(s_v, p_v)
            and s_v.dtype == p_v.dtype
        ):
            return _failed(self.name, f"coalesce serial != blocked ({self.monoid.name})")

        return _passed(self.name, f"5 kernels agree at block_rows={self.block_rows}")


# --------------------------------------------------------------------------- #
# 1b. lazy-masked ≡ eager-then-filter
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class MaskedEqualityOracle:
    """Fused masked evaluation vs independent eager-then-filter references.

    Every corpus matrix is pushed through the expression layer's masked
    kernels three ways — serial fused, row-blocked fused (deliberately tiny
    blocks), and the lazy ``.new(mask=…)`` surface — and each must be
    bit-identical to an *independent* dense reference that materialises the
    full result and zeroes the masked-out cells.  Covered: masked ``mxm``
    (plain and complement), the fused n-ary union, the masked intersection,
    ``masked_select``, masked ``mxv``, and the mask+accumulator assignment
    rule.  The structural mask is drawn deterministically from the spec seed,
    so the corpus replays identically everywhere.

    Like :class:`KernelEqualityOracle`, the blocked paths run on an explicit
    serial config so whole corpora can fan over thread/process pools without
    nesting executors.
    """

    semiring: Semiring = PLUS_TIMES
    monoid: Monoid = PLUS_MONOID
    block_rows: int = 3
    mask_density: float = 0.3

    name = "masked_equality"

    def _config(self) -> RuntimeConfig:
        return RuntimeConfig(workers=1, backend="serial", block_rows=self.block_rows)

    @staticmethod
    def _filtered_ref(result: CSRMatrix, allow: np.ndarray) -> CSRMatrix:
        """Independent reference: densify, zero the disallowed cells, rebuild."""
        dense = result.to_dense(0)
        dense = np.where(allow, dense, 0)
        rows, cols = np.nonzero(dense)
        return CSRMatrix.from_triples(
            rows, cols, dense[rows, cols].astype(result.dtype), result.shape
        )

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        from repro.assoc import expr

        cfg = self._config()
        a = spec.build().to_csr()
        at = a.transpose()
        n = a.shape[0]
        rng = np.random.default_rng(spec.seed + 7)
        allow = rng.random(a.shape) < self.mask_density
        mask = CSRMatrix.from_dense(allow)
        sr, add = self.semiring, self.monoid

        # masked mxm: fused serial ≡ fused blocked ≡ lazy surface ≡ dense ref
        eager = a._mxm_serial(a, sr)
        for complement, allowed in ((False, allow), (True, ~allow)):
            ref = self._filtered_ref(eager, allowed)
            lazy_out = expr.lazy(a).mxm(a, sr).new(mask=mask, complement=complement)
            if not _csr_identical(lazy_out, ref):
                return _failed(self.name, f"lazy masked mxm != eager-then-filter (complement={complement})")
            if not complement:
                fused = _masked_mxm_serial(a, a, sr, mask)
                blocked = parallel_masked_mxm(a, a, sr, mask, cfg)
                if not (_csr_identical(fused, ref) and _csr_identical(blocked, ref)):
                    return _failed(self.name, "fused masked mxm != eager-then-filter")
                plan = expr.lazy(a).mxm(a, sr).plan(mask=mask)
                if plan.materializes_unmasked or "masked_mxm" not in plan.kernels:
                    return _failed(self.name, f"planner did not fuse the mask: {plan.describe()}")

        # fused n-ary masked union over [A, Aᵀ, A]
        parts = [a, at, a]
        eager_union = a._ewise_union_serial(at, add)._ewise_union_serial(a, add)
        for complement, allowed in ((False, allow), (True, ~allow)):
            ref = self._filtered_ref(eager_union, allowed)
            fused = _union_all_serial(parts, add, mask, complement)
            blocked = parallel_union_all(parts, add, mask, complement, cfg)
            lazy_out = (expr.lazy(a) + at + a).new(mask=mask, complement=complement)
            if not (
                _csr_identical(fused, ref)
                and _csr_identical(blocked, ref)
                and _csr_identical(lazy_out, ref)
            ):
                return _failed(self.name, f"masked union != eager-then-filter (complement={complement})")

        # masked intersection A ⊗ Aᵀ
        mult = sr.mult
        eager_inter = a._ewise_intersect_serial(at, mult)
        for complement, allowed in ((False, allow), (True, ~allow)):
            ref = self._filtered_ref(eager_inter, allowed)
            fused = _masked_intersect_serial(a, at, mult, mask, complement)
            blocked = parallel_masked_intersect(a, at, mult, mask, complement, cfg)
            if not (_csr_identical(fused, ref) and _csr_identical(blocked, ref)):
                return _failed(self.name, f"masked intersect != eager-then-filter (complement={complement})")

        # masked select of the operand itself
        for complement, allowed in ((False, allow), (True, ~allow)):
            ref = self._filtered_ref(a, allowed)
            if not _csr_identical(masked_select(a, mask, complement), ref):
                return _failed(self.name, f"masked select != eager-then-filter (complement={complement})")

        # masked mxv: unselected rows carry the additive identity
        x = rng.integers(0, 5, size=n).astype(np.int64)
        row_allow = rng.random(n) < 0.5
        y_ref = a._mxv_serial(x, sr)
        y_ref = np.where(row_allow, y_ref, sr.add.identity(y_ref.dtype))
        y_fused = _masked_mxv_serial(a, x, sr, row_allow)
        y_blocked = parallel_masked_mxv(a, x, sr, row_allow, cfg)
        y_lazy = expr.lazy(a).mxv(x, sr).new(mask=row_allow)
        if not (
            np.array_equal(y_ref, y_fused)
            and np.array_equal(y_ref, y_blocked)
            and np.array_equal(y_ref, y_lazy)
            and y_ref.dtype == y_fused.dtype == y_blocked.dtype == y_lazy.dtype
        ):
            return _failed(self.name, "masked mxv != eager-then-filter")

        # mask + accumulator assignment vs a dense model of the GraphBLAS rule
        result = masked_select(at, mask, False)
        for replace in (False, True):
            assigned = expr.apply_assign(a, result, expr.Mask(mask), PLUS_MONOID, replace)
            old_d = a.to_dense(0)
            res_d = result.to_dense(0)
            po, pr = old_d != 0, res_d != 0
            out = np.where(pr & po, old_d + res_d, np.where(pr, res_d, old_d))
            if replace:
                out = np.where(~allow & po & ~pr, 0, out)
            if not np.array_equal(assigned.to_dense(0), out):
                return _failed(self.name, f"accum assignment diverged (replace={replace})")

        return _passed(self.name, "6 masked paths agree with eager-then-filter")


# --------------------------------------------------------------------------- #
# 2. spec → JSON → spec → matrix round trip
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RoundTripOracle:
    """Serialisation is lossless and provenance is rebuildable.

    ``spec → to_json → from_json`` must reproduce the spec, both documents
    must build bit-identical matrices, and the provenance metadata stamped on
    the built matrix must itself rebuild the same matrix — three independent
    representations of one scenario.
    """

    name = "round_trip"

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        decoded = ScenarioSpec.from_json(spec.to_json())
        if decoded != spec:
            return _failed(self.name, "spec != from_json(to_json(spec))")
        built = spec.build()
        rebuilt = decoded.build()
        if built != rebuilt or built.meta != rebuilt.meta:
            return _failed(self.name, "decoded spec builds a different matrix")
        provenance = built.meta.get("scenario")
        if provenance != spec.to_dict():
            return _failed(self.name, "provenance metadata != spec document")
        if ScenarioSpec.from_dict(provenance).build() != built:
            return _failed(self.name, "provenance document does not rebuild the matrix")
        return _passed(self.name)


# --------------------------------------------------------------------------- #
# 3. classifier agreement
# --------------------------------------------------------------------------- #

#: Structural ambiguities the classifier cannot resolve even in principle:
#: at sizes with a single grey-space endpoint, ``staging`` (red→grey with no
#: grey↔grey replication) is cell-for-cell identical to uniform botnet
#: tasking, so either answer is correct.
CLASSIFIER_AMBIGUITIES: dict[str, frozenset[str]] = {
    "staging": frozenset({"botnet_clients"}),
}

#: Families whose generators the rule-based classifiers cover.
_CLASSIFIABLE_FAMILIES = frozenset({"pattern", "topology", "attack", "defense", "ddos"})


@dataclass(frozen=True)
class ClassifierOracle:
    """The rule-based classifier must recover the generating family.

    For every non-composite, overlay-free spec, :func:`classify_spec` runs
    the matrix back through the structural classifiers; the predicted label
    (in registry vocabulary) must belong to the same family that generated
    it, modulo the documented :data:`CLASSIFIER_AMBIGUITIES`.

    Noise handling: specs whose noise density is at or below
    ``noise_threshold`` are classified as-is (classification must survive
    that much chatter); noisier specs are classified with the noise stage
    stripped, so the generator↔classifier agreement is still exercised on
    every spec the corpus draws.  The structural classifiers are exact by
    design — a single stray cell can change a star into "unknown" — so the
    default threshold is 0.0; raise it deliberately in tests that construct
    noise known not to land.
    """

    noise_threshold: float = 0.0

    name = "classifier_agreement"

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        info = get_generator(spec.base)
        if info.family not in _CLASSIFIABLE_FAMILIES:
            return _skipped(self.name, f"family {info.family!r} has no classifier")
        if "composite" in info.tags:
            return _skipped(self.name, f"{spec.base!r} is a multi-family composite")
        if spec.overlays:
            return _skipped(self.name, "overlay stacks are composites")

        target = spec
        if spec.noise is not None and spec.noise.density > self.noise_threshold:
            target = replace(spec, noise=None)
        matrix = target.build()
        if matrix.nnz() == 0:
            return _skipped(self.name, "empty matrix carries no signature")

        from repro.graphs.classify import classify_matrix

        # classify_matrix already reports registry vocabulary (aliases resolved)
        canonical = predicted = classify_matrix(matrix, info.family)
        if canonical in CLASSIFIER_AMBIGUITIES.get(info.name, frozenset()):
            return _passed(self.name, f"{predicted!r} accepted (documented ambiguity)")
        try:
            predicted_family = get_generator(canonical).family
        except Exception:
            predicted_family = "unknown"
        if predicted_family != info.family:
            return _failed(
                self.name,
                f"{spec.base!r} ({info.family}) classified as {predicted!r} "
                f"({predicted_family})",
            )
        return _passed(self.name, f"classified as {predicted!r}")


# --------------------------------------------------------------------------- #
# 4. metamorphic overlay properties
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OverlayMetamorphicOracle:
    """Overlay composition is order-insensitive and provenance-preserving.

    :func:`repro.graphs.compose.overlay` sums layers with the commutative
    ``plus`` monoid and resolves colours by a per-cell priority rule, so any
    permutation of the same materialised layers must produce the same matrix
    — packets, labels, and colours.  The built matrix must also carry the
    full spec document as provenance.  Specs without overlays only exercise
    the provenance half (a single layer has one ordering).
    """

    name = "overlay_metamorphic"

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        from repro.graphs.compose import overlay

        built = spec.build()
        if built.meta.get("scenario") != spec.to_dict():
            return _failed(self.name, "provenance metadata lost in composition")
        if not spec.overlays:
            return _passed(self.name, "single layer; provenance verified")

        layers = spec.layer_matrices()
        forward = overlay(layers)
        for label, permuted in (
            ("reversed", list(reversed(layers))),
            ("rotated", layers[1:] + layers[:1]),
        ):
            other = overlay(permuted)
            if forward != other:
                return _failed(
                    self.name,
                    f"overlay of {len(layers)} layers changed under {label} order",
                )
        return _passed(self.name, f"{len(layers)}-layer overlay is order-insensitive")


# --------------------------------------------------------------------------- #
# 5. cache transparency and delta-rebuild bit-identity
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CacheDeltaOracle:
    """The cache serves bit-identical results and delta rebuilds match full ones.

    Two independent claims the scenario service stands on, fuzzed per spec:

    * **Cache transparency** — routing a spec through a fresh
      :class:`~repro.scenarios.ScenarioCache` twice must produce the direct
      ``spec.build()`` result both times, packets *and* provenance metadata,
      with the analytics counting exactly one miss then one hit.  The cache
      must be unobservable except in speed.
    * **Delta bit-identity** — splitting the spec into a base plus its last
      overlay (or, for overlay-free specs, appending the spec's own base
      generator as a synthetic delta layer) and rebuilding through
      :func:`~repro.scenarios.apply_delta` must reproduce the full
      from-scratch build of the combined spec bit for bit, noise and
      provenance included — the row-blocked incremental path against the
      monolithic one.
    """

    name = "cache_delta"

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        from repro.scenarios.batch import generate_batch
        from repro.scenarios.cache import ScenarioCache
        from repro.scenarios.delta import apply_delta, extend_spec

        direct = spec.build()

        cache = ScenarioCache()
        first = generate_batch([spec], cache=cache)[0]
        second = generate_batch([spec], cache=cache)[0]
        if first != direct or first.meta != direct.meta:
            return _failed(self.name, "cache miss path != direct build")
        if second != direct or second.meta != direct.meta:
            return _failed(self.name, "cache hit != direct build")
        analytics = cache.analytics()
        if analytics.misses != 1 or analytics.hits != 1:
            return _failed(
                self.name,
                f"analytics miscounted: {analytics.misses} misses, "
                f"{analytics.hits} hits (expected 1 and 1)",
            )

        if spec.overlays:
            base = replace(spec, overlays=spec.overlays[:-1])
            delta = spec.overlays[-1:]
        else:
            base = spec
            delta = (OverlaySpec(spec.base, dict(spec.params)),)
        target = extend_spec(base, delta)
        full = target.build()
        result = apply_delta(base, delta, cache=ScenarioCache())
        if result.spec != target:
            return _failed(self.name, "apply_delta built the wrong combined spec")
        if result.matrix != full or result.matrix.meta != full.meta:
            return _failed(
                self.name,
                f"delta rebuild != full rebuild of {target.base!r} "
                f"(+{len(delta)} overlay)",
            )
        return _passed(
            self.name,
            f"cache transparent; delta recomputed "
            f"{result.stats.rows_recomputed}/{result.stats.rows} rows identically",
        )


# --------------------------------------------------------------------------- #
# 6. static shape/dtype inference vs runtime observation
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class StaticShapesOracle:
    """:func:`repro.staticcheck.shapes.infer` must agree with reality.

    For every corpus spec, an expression battery is built over the scenario
    matrix — ``mxm`` (plain, masked, float-promoting), a fused 3-way union,
    an intersection, a transpose above a product, ``mxv`` and ``reduce_rows``
    (plain and row-masked) — and each tree is typed **statically** and then
    **executed**; inferred shape and dtype must match the observed result
    exactly.  The battery also checks the negative direction: a
    raw-constructed inner-dimension-mismatched ``MxM`` (which the builder
    methods would have refused) must be *rejected* by inference, proving
    ``Plan.typecheck()`` catches trees that previously failed only inside a
    kernel.

    The battery sticks to ``PLUS_TIMES``, for which the eager ``mxm``
    kernel's empty-operand dtype degradation (``np.result_type`` instead of
    the ufunc probe) is invisible — so agreement is exact even on empty
    corpus matrices.

    ``infer_fn`` is the fault-injection seam: tests plant a deliberately
    wrong (module-level, picklable) inference function and this oracle must
    fail, proving the agreement check has teeth.
    """

    mask_density: float = 0.3
    infer_fn: object | None = None

    name = "static_shapes"

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        from repro.assoc import expr as E
        from repro.errors import ShapeInferenceError
        from repro.staticcheck import shapes

        infer = self.infer_fn if self.infer_fn is not None else shapes.infer

        a = spec.build().to_csr()
        at = a.transpose()
        a_float = CSRMatrix(a.shape, a.indptr, a.indices, a.data.astype(np.float64))
        rng = np.random.default_rng(spec.seed + 13)
        mask = CSRMatrix.from_dense(rng.random(a.shape) < self.mask_density)

        battery: list[tuple[str, E.MatExpr, CSRMatrix | None]] = [
            ("mxm", E.as_expr(a).mxm(at, PLUS_TIMES), None),
            ("masked_mxm", E.as_expr(a).mxm(at, PLUS_TIMES), mask),
            ("mxm_float", E.as_expr(a).mxm(a_float, PLUS_TIMES), None),
            ("union3", E.as_expr(a) + at + a_float, mask),
            (
                "intersect",
                E.as_expr(a).ewise(at, PLUS_TIMES.mult, how="intersect"),
                None,
            ),
            ("transpose_mxm", E.as_expr(a).mxm(at, PLUS_TIMES).transpose(), None),
        ]
        for label, tree, m in battery:
            try:
                inferred = infer(tree, m)
            except ShapeInferenceError as exc:
                return _failed(self.name, f"{label}: inference rejected a valid tree: {exc}")
            observed = tree.new(mask=m)
            if tuple(inferred.shape) != observed.shape:
                return _failed(
                    self.name,
                    f"{label}: inferred shape {inferred.shape} != observed "
                    f"{observed.shape}",
                )
            if np.dtype(inferred.dtype) != observed.dtype:
                return _failed(
                    self.name,
                    f"{label}: inferred dtype {np.dtype(inferred.dtype)} != "
                    f"observed {observed.dtype}",
                )

        # vector half (always the real inference: the seam covers matrices)
        x = rng.integers(0, 5, size=a.shape[1]).astype(np.int64)
        row_allow = rng.random(a.shape[0]) < 0.5
        vec_battery: list[tuple[str, E.VecExpr, np.ndarray | None]] = [
            ("mxv", E.as_expr(a).mxv(x, PLUS_TIMES), None),
            ("masked_mxv", E.as_expr(a).mxv(x, PLUS_TIMES), row_allow),
            ("reduce_rows", E.as_expr(a).reduce_rows(PLUS_MONOID), None),
            ("masked_reduce", E.as_expr(a).reduce_rows(PLUS_MONOID), row_allow),
        ]
        for label, vtree, allow in vec_battery:
            inferred = shapes.infer_vec(vtree, allow)
            observed_v = vtree.new(mask=allow)
            if tuple(inferred.shape) != observed_v.shape or np.dtype(
                inferred.dtype
            ) != observed_v.dtype:
                return _failed(
                    self.name,
                    f"{label}: inferred {inferred} != observed "
                    f"{observed_v.shape} {observed_v.dtype}",
                )

        # negative direction: the raw-constructed mismatch must be rejected
        wrong = CSRMatrix.empty((a.shape[1] + 1, a.shape[1]), a.dtype)
        bad = E.MxM(E.MatLeaf(a), E.MatLeaf(wrong), PLUS_TIMES)  # staticcheck: ignore[SHP001]
        plan = bad.plan()
        try:
            plan.typecheck()
        except ShapeInferenceError:
            pass
        else:
            return _failed(
                self.name,
                "Plan.typecheck() accepted an inner-dimension-mismatched MxM",
            )

        return _passed(
            self.name,
            f"{len(battery)}+{len(vec_battery)} expressions typed identically "
            f"to execution; mismatched tree rejected",
        )


# --------------------------------------------------------------------------- #
# 7. durable store round trip vs direct build
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class StoreRoundTripOracle:
    """The disk round trip is bit-identical and corruption never goes quiet.

    Extends the bit-identity contract to :mod:`repro.store`, fuzzed per spec:

    * **Round-trip identity** — ``put`` into a fresh store, reopen the same
      directory as a *new* store instance (a stand-in for a new process: no
      shared state survives but the files), and ``get`` must reproduce the
      direct ``spec.build()`` result exactly — packets, colours, labels, and
      provenance metadata.
    * **Upsert idempotence** — a second ``put`` of the same spec leaves
      exactly one index row (``writes`` bumped, nothing duplicated).
    * **Integrity enforcement** — flipping one byte of the stored blob must
      make ``get`` raise :class:`~repro.errors.StoreIntegrityError`; a store
      that serves corrupt bytes quietly fails the oracle.

    ``fsync`` defaults off: the oracle exercises framing and integrity, not
    the disk cache, and fuzz corpora run this hundreds of times.
    """

    name = "store_round_trip"
    fsync: bool = False

    def check(self, spec: ScenarioSpec) -> OracleVerdict:
        import shutil
        import tempfile

        from repro.errors import StoreIntegrityError
        from repro.store import ScenarioStore

        direct = spec.build()
        root = tempfile.mkdtemp(prefix="repro_store_oracle_")
        try:
            with ScenarioStore(root, fsync=self.fsync) as store:
                key = store.put(spec, direct)
            with ScenarioStore(root, fsync=self.fsync) as reopened:
                loaded = reopened.get(key)
                if loaded is None:
                    return _failed(self.name, "stored matrix missing after reopen")
                if loaded != direct or loaded.meta != direct.meta:
                    return _failed(self.name, "store round trip != direct build")
                reopened.put(spec, direct)
                if reopened.index.count() != 1:
                    return _failed(
                        self.name,
                        f"re-put left {reopened.index.count()} index rows "
                        f"(expected exactly 1)",
                    )
                row = reopened.entry(key)
                writes = row.writes if row is not None else 0
            blob_path = None
            with ScenarioStore(root, fsync=self.fsync) as store3:
                blob_path = store3.blobs.path_for(key)
                corrupted = bytearray(blob_path.read_bytes())
                corrupted[len(corrupted) // 2] ^= 0xFF
                blob_path.write_bytes(bytes(corrupted))
                try:
                    store3.get(key)
                except StoreIntegrityError:
                    pass
                else:
                    return _failed(
                        self.name, "corrupted blob served without an integrity error"
                    )
            return _passed(
                self.name,
                f"disk round trip identical; upsert idempotent "
                f"(writes={writes}); corruption detected",
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)


def default_oracles() -> tuple[Oracle, ...]:
    """The standard battery: all eight differential oracles, default settings."""
    return (
        KernelEqualityOracle(),
        MaskedEqualityOracle(),
        RoundTripOracle(),
        ClassifierOracle(),
        OverlayMetamorphicOracle(),
        CacheDeltaOracle(),
        StaticShapesOracle(),
        StoreRoundTripOracle(),
    )
