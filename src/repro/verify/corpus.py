"""Seeded random-spec corpus generation over the scenario registry.

The sampler walks :data:`~repro.scenarios.SCENARIO_REGISTRY` and draws valid
:class:`~repro.scenarios.ScenarioSpec` documents: a base generator, in-bounds
parameters from its introspected schema, an optional overlay stack, and
optional background noise.  Every spec a corpus emits must *validate and
build* — anything else is a registry/schema bug, which is exactly what the
boundary tests in ``tests/scenarios`` pin down.

Determinism is the whole point: ``make_corpus(count, seed)`` returns the same
specs on every machine, so a failing corpus index is a complete bug report.
All randomness flows through one :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.scenarios.registry import (
    SCENARIO_REGISTRY,
    GeneratorInfo,
    ensure_registered,
    get_generator,
)
from repro.scenarios.spec import NoiseSpec, OverlaySpec, ScenarioSpec

__all__ = ["CorpusConfig", "random_spec", "make_corpus", "sampleable_names"]

#: Parameters the sampler never draws: handled by the spec machinery itself
#: (``seed``, ``labels``), or structured values (vertex subsets, role
#: assignments, grid dims) whose constraints the flat schema cannot express.
_UNSAMPLED = frozenset(
    {
        "seed",
        "labels",
        "roles",
        "members",
        "left",
        "vertices",
        "pairs",
        "links",
        "dims",
        "hub",
        "foothold",
        "src_space",
        "dst_space",
    }
)

#: Soft caps applied on top of open-ended schema bounds, keeping corpus
#: matrices inside the paper's display guidance (and fuzz runs fast).
_SOFT_MAX = {
    "packets": 9,
    "attack_packets": 9,
    "provocation_packets": 9,
    "max_packets": 4,
    "branching": 4,
}


class CorpusConfig:
    """Knobs for :func:`random_spec` / :func:`make_corpus`.

    Plain attributes instead of a dataclass so a config can be shared and
    tweaked in tests without ceremony.
    """

    def __init__(
        self,
        *,
        n_range: tuple[int, int] = (4, 24),
        families: Sequence[str] | None = None,
        exclude: Iterable[str] = (),
        max_overlays: int = 2,
        overlay_probability: float = 0.35,
        noise_probability: float = 0.4,
        noise_density_range: tuple[float, float] = (0.02, 0.25),
    ) -> None:
        lo, hi = int(n_range[0]), int(n_range[1])
        if not 1 <= lo <= hi:
            raise ScenarioError(f"corpus n_range must satisfy 1 <= lo <= hi, got {n_range}")
        self.n_range = (lo, hi)
        self.families = None if families is None else tuple(families)
        self.exclude = frozenset(exclude)
        self.max_overlays = int(max_overlays)
        self.overlay_probability = float(overlay_probability)
        self.noise_probability = float(noise_probability)
        self.noise_density_range = (
            float(noise_density_range[0]),
            float(noise_density_range[1]),
        )


def sampleable_names(config: CorpusConfig | None = None) -> tuple[str, ...]:
    """Registry names the corpus sampler draws from, in sorted order."""
    ensure_registered()
    cfg = config or CorpusConfig()
    return tuple(
        name
        for name in sorted(SCENARIO_REGISTRY)
        if name not in cfg.exclude
        and (cfg.families is None or SCENARIO_REGISTRY[name].family in cfg.families)
    )


def _valid_sizes(info: GeneratorInfo, n_range: tuple[int, int]) -> list[int]:
    lo, hi = n_range
    lo = max(lo, info.min_n)
    sizes = [n for n in range(lo, max(lo, hi) + 1) if n % info.n_multiple_of == 0]
    if not sizes:
        # the range excludes every legal size; fall back to the smallest legal one
        first = info.min_n
        if first % info.n_multiple_of:
            first += info.n_multiple_of - first % info.n_multiple_of
        sizes = [first]
    return sizes


def _sample_params(
    info: GeneratorInfo, n: int, rng: np.random.Generator
) -> dict[str, Any]:
    """In-bounds keyword arguments for *info*, each drawn with probability 1/2.

    Values come from the declared schema bounds (soft-capped for open upper
    ends); ``center`` is the one parameter whose real upper bound depends on
    ``n``, so it is special-cased.  Everything returned is a plain Python
    scalar — specs must serialise to JSON.
    """
    params: dict[str, Any] = {}
    for p in info.params:
        if p.name in _UNSAMPLED or p.name == "n":
            continue
        if rng.random() < 0.5:
            continue  # keep defaults in the corpus too
        if p.name == "center":
            params[p.name] = int(rng.integers(0, n))
        elif isinstance(p.default, bool):
            params[p.name] = bool(rng.random() < 0.5)
        elif p.name == "density":
            lo = p.minimum if p.minimum is not None else 0.0
            hi = p.maximum if p.maximum is not None else 1.0
            params[p.name] = round(float(rng.uniform(lo, min(hi, 0.3))), 3)
        elif p.bounded:
            lo = int(p.minimum if p.minimum is not None else 1)
            hi = int(p.maximum) if p.maximum is not None else _SOFT_MAX.get(p.name, lo + 8)
            params[p.name] = int(rng.integers(lo, hi + 1))
        # unbounded, non-special parameters stay at their defaults
    return params


def random_spec(
    rng: np.random.Generator, config: CorpusConfig | None = None
) -> ScenarioSpec:
    """Draw one valid scenario spec from the registry's schema space."""
    cfg = config or CorpusConfig()
    names = sampleable_names(cfg)
    if not names:
        raise ScenarioError("corpus configuration excludes every registered generator")
    base = str(rng.choice(list(names)))
    info = get_generator(base)
    n = int(rng.choice(_valid_sizes(info, cfg.n_range)))

    overlays: list[OverlaySpec] = []
    if cfg.max_overlays > 0 and rng.random() < cfg.overlay_probability:
        pool = [name for name in names if get_generator(name).valid_n(n)]
        count = int(rng.integers(1, cfg.max_overlays + 1))
        for _ in range(count):
            ov_name = str(rng.choice(pool))
            ov_info = get_generator(ov_name)
            overlays.append(OverlaySpec(ov_name, _sample_params(ov_info, n, rng)))

    noise = None
    if rng.random() < cfg.noise_probability:
        lo, hi = cfg.noise_density_range
        noise = NoiseSpec(
            density=round(float(rng.uniform(lo, hi)), 3),
            max_packets=int(rng.integers(1, 4)),
            preserve_pattern=bool(rng.random() < 0.8),
        )

    spec = ScenarioSpec(
        base=base,
        params=_sample_params(info, n, rng),
        n=n,
        seed=int(rng.integers(0, 2**31)),
        noise=noise,
        overlays=tuple(overlays),
    )
    return spec.validate()


def make_corpus(
    count: int, seed: int, config: CorpusConfig | None = None
) -> list[ScenarioSpec]:
    """A deterministic corpus of *count* random specs derived from *seed*.

    Same ``(count, seed, config)`` → same specs, on every machine and every
    executor — corpora can be named by their seed in bug reports and CI logs.
    A corpus prefix is stable: ``make_corpus(50, s)[:10] == make_corpus(10, s)``.
    """
    if count < 0:
        raise ScenarioError(f"corpus size must be >= 0, got {count}")
    rng = np.random.default_rng(int(seed))
    return [random_spec(rng, config) for _ in range(count)]
