"""Greedy spec minimisation: smaller repros while the failure persists.

``shrink_spec`` takes a failing spec and a predicate ("does this candidate
still fail?") and applies delta-debugging-style reductions until a fixpoint:
drop overlay layers, drop the noise stage, drop sampled parameters back to
their defaults, shrink the matrix size toward the registry's ``min_n``, and
zero the seed.  Every accepted candidate still satisfies the predicate, so
the result is a *verified* minimal(ish) reproduction — the JSON that lands
in ``tests/corpus/`` is as small as this pass can make it.

The pass is deterministic (candidate order is fixed) and bounded
(``max_attempts`` predicate calls), so shrinking inside CI cannot run away.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.scenarios.registry import get_generator
from repro.scenarios.spec import ScenarioSpec

__all__ = ["shrink_spec"]


def _layer_names(spec: ScenarioSpec) -> list[str]:
    return [spec.base, *(ov.name for ov in spec.overlays)]


def _min_valid_n(spec: ScenarioSpec) -> tuple[int, int]:
    """(smallest legal n, required multiple) across every layer generator."""
    infos = [get_generator(name) for name in _layer_names(spec)]
    floor = max(info.min_n for info in infos)
    step = math.lcm(*(info.n_multiple_of for info in infos))
    if floor % step:
        floor += step - floor % step
    return floor, step


def _candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Strictly-simpler variants of *spec*, most aggressive first."""
    # 1. drop whole overlay layers
    for k in range(len(spec.overlays)):
        yield replace(spec, overlays=spec.overlays[:k] + spec.overlays[k + 1 :])
    # 2. drop the noise stage
    if spec.noise is not None:
        yield replace(spec, noise=None)
    # 3. revert sampled parameters to generator defaults, one at a time
    for key in sorted(spec.params):
        trimmed = {k: v for k, v in spec.params.items() if k != key}
        yield replace(spec, params=trimmed)
    for idx, ov in enumerate(spec.overlays):
        for key in sorted(ov.params):
            trimmed_ov = replace(ov, params={k: v for k, v in ov.params.items() if k != key})
            yield replace(
                spec, overlays=spec.overlays[:idx] + (trimmed_ov,) + spec.overlays[idx + 1 :]
            )
    # 4. shrink the matrix: jump to the floor, then bisect, then step down
    floor, step = _min_valid_n(spec)
    seen = set()
    for n in (floor, (spec.n + floor) // 2, spec.n - step):
        n -= n % step
        if floor <= n < spec.n and n not in seen:
            seen.add(n)
            yield replace(spec, n=n)
    # 5. canonicalise the seed
    if spec.seed != 0:
        yield replace(spec, seed=0)


def _acceptable(candidate: ScenarioSpec, still_fails: Callable[[ScenarioSpec], bool]) -> bool:
    """A candidate is accepted when it is valid *and* still failing.

    Candidates that no longer validate (a parameter the failure needed, a
    size below a layer's floor) are simply rejected — shrinking must never
    turn a real failure into a malformed spec.
    """
    try:
        candidate.validate()
    except ReproError:
        return False
    try:
        return bool(still_fails(candidate))
    except ReproError:
        # a candidate that *errors* still reproduces a defect only if the
        # predicate says so; a raising predicate means "cannot evaluate"
        return False


def shrink_spec(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    *,
    max_attempts: int = 200,
) -> ScenarioSpec:
    """Minimise *spec* while ``still_fails(candidate)`` stays true.

    Returns the smallest spec found (possibly *spec* itself when nothing
    simpler reproduces).  The caller's predicate defines "failing" — usually
    one oracle's ``check(...).failed`` — and is invoked at most
    ``max_attempts`` times.
    """
    current = spec
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            if _acceptable(candidate, still_fails):
                current = candidate
                progress = True
                break  # restart the scan from the simplified spec
    return current
