"""Differential verification: spec-space fuzzing with agreement oracles.

This package turns the determinism guarantees of the runtime and scenario
subsystems into continuously enforced properties.  It draws random-but-valid
:class:`~repro.scenarios.ScenarioSpec` documents from the registry's
introspected schemas (:func:`make_corpus`), runs each through a battery of
independent-path oracles (:func:`default_oracles`), and reports — shrinking
and persisting any failure as a replayable JSON repro file.

The eight standard oracles:

* :class:`KernelEqualityOracle` — serial vs row-blocked semiring kernels on
  corpus-derived CSR matrices, bit for bit (plus a dense reference for
  ``plus.times``);
* :class:`MaskedEqualityOracle` — the expression layer's fused masked kernels
  (masked ``mxm``/union/intersect/select/``mxv`` and accumulator assignment)
  vs independent eager-then-filter references, serial and blocked;
* :class:`RoundTripOracle` — spec → JSON → spec → matrix identity, and
  provenance metadata that rebuilds its own matrix;
* :class:`ClassifierOracle` — the rule-based classifier recovers the
  generating family (documented ambiguities excepted);
* :class:`OverlayMetamorphicOracle` — overlay composition is
  order-insensitive and preserves provenance;
* :class:`CacheDeltaOracle` — the content-addressed scenario cache is
  transparent (hit ≡ miss ≡ direct build, provenance included) and the
  row-blocked :func:`~repro.scenarios.apply_delta` incremental rebuild is
  bit-identical to the full rebuild;
* :class:`StaticShapesOracle` — :func:`repro.staticcheck.shapes.infer` types
  an expression battery over every corpus matrix identically to runtime
  observation (shape *and* dtype), and ``Plan.typecheck()`` rejects a
  raw-constructed ill-shaped product;
* :class:`StoreRoundTripOracle` — the durable :mod:`repro.store` round trip
  (put, reopen, get) is bit-identical to the direct build, upserts are
  idempotent, and a corrupted blob raises instead of serving bad bytes.

Quickstart::

    from repro.verify import make_corpus, run_corpus

    report = run_corpus(make_corpus(200, seed=7), workers=4)
    assert report.ok, report.summary()
"""

from repro.verify.corpus import (
    CorpusConfig,
    make_corpus,
    random_spec,
    sampleable_names,
)
from repro.verify.oracles import (
    CLASSIFIER_AMBIGUITIES,
    CacheDeltaOracle,
    ClassifierOracle,
    KernelEqualityOracle,
    MaskedEqualityOracle,
    Oracle,
    OracleVerdict,
    OverlayMetamorphicOracle,
    RoundTripOracle,
    StaticShapesOracle,
    StoreRoundTripOracle,
    default_oracles,
)
from repro.verify.runner import (
    CorpusFailure,
    CorpusReport,
    SpecResult,
    load_repro,
    replay_from_store,
    replay_repro,
    run_corpus,
    save_repro,
)
from repro.verify.shrink import shrink_spec

__all__ = [
    "CorpusConfig",
    "make_corpus",
    "random_spec",
    "sampleable_names",
    "Oracle",
    "OracleVerdict",
    "KernelEqualityOracle",
    "MaskedEqualityOracle",
    "RoundTripOracle",
    "ClassifierOracle",
    "OverlayMetamorphicOracle",
    "CacheDeltaOracle",
    "StaticShapesOracle",
    "StoreRoundTripOracle",
    "CLASSIFIER_AMBIGUITIES",
    "default_oracles",
    "SpecResult",
    "CorpusFailure",
    "CorpusReport",
    "run_corpus",
    "save_repro",
    "load_repro",
    "replay_repro",
    "replay_from_store",
    "shrink_spec",
]
