"""The differential-verification driver: corpora × oracles × executors.

:func:`run_corpus` fans a spec corpus over the runtime executors (the same
serial/thread/process machinery the kernels and ``generate_batch`` use),
runs every oracle on every spec, and returns a :class:`CorpusReport`.
Verdicts are deterministic — same corpus, same oracles ⇒ same report, on
any backend — which is itself asserted by the fuzz tests via
:meth:`CorpusReport.signature`.

Failures are shrunk (:func:`repro.verify.shrink.shrink_spec`) and, when a
``repro_dir`` is given, persisted as self-contained JSON repro files that
:func:`replay_repro` can re-run directly — a failing fuzz campaign leaves
behind exactly the artefacts needed to debug it.

With a :class:`~repro.store.ScenarioStore` attached (``store=`` on
:func:`run_corpus`/:func:`save_repro`), repros also persist *durably*: the
minimized spec, its built matrix, and the failure provenance land in the
store under ``kind="repro"``, and :func:`replay_from_store` re-runs them in
any later process — a fuzz campaign's findings survive the machine that
found them.  :func:`load_repro` doubles as the migration shim for legacy
sha1-named repro files: pass it a store and the file is imported on first
load (with a deprecation note for the old naming).
"""

from __future__ import annotations

import functools
import hashlib
import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ReproError, ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ScenarioStore
from repro.obs import trace as _trace
from repro.runtime.config import configured
from repro.runtime.executor import parallel_map
from repro.scenarios.spec import ScenarioSpec
from repro.verify.oracles import Oracle, OracleVerdict, default_oracles
from repro.verify.shrink import shrink_spec

__all__ = [
    "SpecResult",
    "CorpusFailure",
    "CorpusReport",
    "run_corpus",
    "save_repro",
    "load_repro",
    "replay_repro",
    "replay_from_store",
]

#: Version stamp for persisted repro documents.
REPRO_FILE_VERSION = 1


@dataclass(frozen=True)
class SpecResult:
    """All oracle verdicts for one corpus spec."""

    index: int
    spec: ScenarioSpec
    verdicts: tuple[OracleVerdict, ...]

    @property
    def failed(self) -> bool:
        return any(v.failed for v in self.verdicts)


@dataclass(frozen=True)
class CorpusFailure:
    """One oracle failure, with its minimized reproduction."""

    index: int
    oracle: str
    detail: str
    spec: ScenarioSpec
    minimized: ScenarioSpec
    repro_path: Path | None = None


@dataclass(frozen=True)
class CorpusReport:
    """Everything a corpus run produced, in corpus order."""

    results: tuple[SpecResult, ...]
    failures: tuple[CorpusFailure, ...] = field(default=())
    #: When the run failed under an active tracer and had a ``repro_dir``,
    #: the Perfetto trace of the failing fan-out lands next to the repro
    #: files and its path is recorded here (excluded from equality — the
    #: verdicts, not the artefact location, are the report's identity).
    trace_path: Path | None = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def counts(self) -> dict[str, int]:
        passed = failed = skipped = 0
        for result in self.results:
            for v in result.verdicts:
                if v.skipped:
                    skipped += 1
                elif v.passed:
                    passed += 1
                else:
                    failed += 1
        return {
            "specs": len(self.results),
            "passed": passed,
            "failed": failed,
            "skipped": skipped,
        }

    def signature(self) -> tuple[tuple[int, str, bool, bool], ...]:
        """A backend-independent fingerprint of every verdict.

        Two runs of the same corpus must produce identical signatures no
        matter which executor fanned them out — the determinism claim the
        fuzz tests assert across serial, thread, and process backends.
        """
        return tuple(
            (result.index, v.oracle, v.passed, v.skipped)
            for result in self.results
            for v in result.verdicts
        )

    def summary(self) -> str:
        c = self.counts
        head = (
            f"{c['specs']} specs: {c['passed']} checks passed, "
            f"{c['failed']} failed, {c['skipped']} skipped"
        )
        lines = [head]
        for failure in self.failures:
            lines.append(
                f"  FAIL [{failure.oracle}] spec #{failure.index} "
                f"({failure.spec.base}): {failure.detail}"
            )
            if failure.repro_path is not None:
                lines.append(f"       repro: {failure.repro_path}")
        if self.trace_path is not None:
            lines.append(f"  trace: {self.trace_path}")
        return "\n".join(lines)


def _check_task(args: tuple[ScenarioSpec, tuple[Oracle, ...]]) -> tuple[OracleVerdict, ...]:
    """Run every oracle on one spec (module-level: crosses process pools).

    An oracle that *raises* produces a failed verdict rather than killing the
    fan-out — a crash on a generated input is precisely the kind of finding
    a fuzzer exists to report.
    """
    spec, oracles = args
    verdicts = []
    for oracle in oracles:
        try:
            verdicts.append(oracle.check(spec))
        except Exception as exc:  # noqa: BLE001 - fuzzing converts crashes to findings
            verdicts.append(
                OracleVerdict(
                    oracle=oracle.name,
                    passed=False,
                    detail=f"oracle raised {type(exc).__name__}: {exc}",
                )
            )
    return tuple(verdicts)


def _still_fails(oracle: Oracle, candidate: ScenarioSpec) -> bool:
    try:
        return oracle.check(candidate).failed
    except Exception:  # noqa: BLE001 - a crashing candidate still reproduces
        return True


def _legacy_repro_digest(failure: CorpusFailure) -> str:
    """The pre-``cache_key`` file digest (sha1 of the pretty-sorted document)."""
    return hashlib.sha1(
        json.dumps(failure.minimized.to_dict(), sort_keys=True).encode()
    ).hexdigest()[:10]


def _store_repro(
    store: "ScenarioStore", spec: ScenarioSpec, *, oracle: str, detail: str
) -> str:
    """Persist one repro spec (and its matrix, when buildable) into a store.

    A spec whose *build itself* crashes — exactly the kind of finding a
    fuzzer treasures — is indexed spec-only, with the crash recorded in the
    provenance, so the repro still survives even without a payload.
    """
    extra = {"oracle": oracle, "detail": detail}
    try:
        matrix = spec.build()
    except ReproError as exc:
        extra["build_error"] = f"{type(exc).__name__}: {exc}"
        return store.put_spec(spec, kind="repro", extra=extra)
    return store.put(spec, matrix, kind="repro", extra=extra)


def save_repro(
    failure: CorpusFailure,
    repro_dir: Path | str,
    *,
    store: "ScenarioStore | None" = None,
) -> Path:
    """Persist one failure as a self-contained JSON repro file.

    The file name is content-addressed (oracle + base + a prefix of the
    minimized spec's :meth:`~repro.scenarios.ScenarioSpec.cache_key` — the
    same single content address the scenario cache uses), so re-running a
    failing corpus overwrites the same repro instead of accumulating
    duplicates.  A repro for the same failure saved under the older sha1
    naming scheme is removed on overwrite; :func:`load_repro` still reads
    old files by path — the digest only ever named the file.

    With ``store`` the failure also lands durably under ``kind="repro"``
    (minimized spec + built matrix + oracle provenance), replayable later
    via :func:`replay_from_store`.
    """
    repro_dir = Path(repro_dir)
    repro_dir.mkdir(parents=True, exist_ok=True)
    minimized_doc = failure.minimized.to_dict()
    digest = failure.minimized.cache_key()[:10]
    stem = f"repro_{failure.oracle}_{failure.minimized.base}"
    path = repro_dir / f"{stem}_{digest}.json"
    legacy = repro_dir / f"{stem}_{_legacy_repro_digest(failure)}.json"
    if legacy != path and legacy.exists():
        legacy.unlink()
    document = {
        "repro_version": REPRO_FILE_VERSION,
        "oracle": failure.oracle,
        "detail": failure.detail,
        "spec": minimized_doc,
        "original_spec": failure.spec.to_dict(),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    if store is not None:
        _store_repro(
            store, failure.minimized, oracle=failure.oracle, detail=failure.detail
        )
    return path


def load_repro(
    path: Path | str, *, store: "ScenarioStore | None" = None
) -> tuple[ScenarioSpec, dict]:
    """Read a repro file back into its minimized spec (plus the raw document).

    With ``store`` the repro is imported into the durable store on first
    load — the migration path for file-only corpora, including legacy
    sha1-named files (e.g. under ``tests/corpus/``), which additionally get
    a :class:`DeprecationWarning` pointing at the store as their new home.
    Already-imported repros are left untouched, so repeated loads are free.
    """
    path = Path(path)
    document = json.loads(path.read_text())
    version = document.get("repro_version")
    if version != REPRO_FILE_VERSION:
        raise ScenarioError(
            f"unsupported repro_version {version!r} in {path} "
            f"(this library reads {REPRO_FILE_VERSION})"
        )
    spec = ScenarioSpec.from_dict(document["spec"])
    name_digest = path.stem.rsplit("_", 1)[-1]
    legacy_digest = hashlib.sha1(
        json.dumps(document["spec"], sort_keys=True).encode()
    ).hexdigest()[:10]
    is_legacy_name = (
        name_digest == legacy_digest and name_digest != spec.cache_key()[:10]
    )
    if is_legacy_name:
        warnings.warn(
            f"repro file {path.name} uses the deprecated sha1 naming scheme; "
            f"re-save it (run_corpus(repro_dir=...)) or import it into a "
            f"ScenarioStore (load_repro(path, store=...)) — sha1-named files "
            f"will stop being recognised as repros in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
    if store is not None and store.entry(spec) is None:
        _store_repro(
            store,
            spec,
            oracle=str(document.get("oracle", "")),
            detail=str(document.get("detail", "")),
        )
    return spec, document


def replay_repro(
    path: Path | str, oracles: Sequence[Oracle] | None = None
) -> tuple[OracleVerdict, ...]:
    """Re-run a saved repro file through the oracle battery.

    By default only the oracle named in the file runs (that is the recorded
    failure); pass ``oracles`` explicitly to run a different battery.
    """
    spec, document = load_repro(path)
    battery = tuple(oracles) if oracles is not None else tuple(
        o for o in default_oracles() if o.name == document.get("oracle")
    )
    if not battery:
        battery = default_oracles()
    return _check_task((spec, tuple(battery)))


def replay_from_store(
    store: "ScenarioStore",
    key: "ScenarioSpec | str",
    oracles: Sequence[Oracle] | None = None,
) -> tuple[OracleVerdict, ...]:
    """Re-run a repro persisted in a :class:`~repro.store.ScenarioStore`.

    ``key`` is the spec or its content address.  The spec is rehydrated from
    the index row (no blob needed — spec-only crash repros replay too), and
    by default only the oracle recorded in the row's provenance runs; pass
    ``oracles`` to run a different battery.
    """
    row = store.entry(key)
    if row is None:
        raise ScenarioError(
            f"store has no repro for key "
            f"{(key if isinstance(key, str) else key.cache_key())[:12]}…"
        )
    spec = ScenarioSpec.from_json(row.spec_json)
    recorded = (row.extra or {}).get("oracle")
    battery = tuple(oracles) if oracles is not None else tuple(
        o for o in default_oracles() if o.name == recorded
    )
    if not battery:
        battery = default_oracles()
    return _check_task((spec, tuple(battery)))


def run_corpus(
    specs: Iterable[ScenarioSpec],
    oracles: Sequence[Oracle] | None = None,
    *,
    workers: int | None = None,
    backend: str | None = None,
    repro_dir: Path | str | None = None,
    store: "ScenarioStore | None" = None,
    shrink: bool = True,
    max_shrink_attempts: int = 200,
) -> CorpusReport:
    """Run every oracle over every spec, optionally in parallel.

    ``workers``/``backend`` scope a runtime configuration to this call (the
    same contract as :func:`repro.scenarios.generate_batch`); the default
    inherits the process-wide :func:`repro.runtime.configure` opt-in.
    Failures are shrunk and, when ``repro_dir`` is given, written as JSON
    repro files; ``store`` additionally persists each failure durably (see
    :func:`save_repro`).  Shrinking happens after the fan-out, serially —
    predicates re-run oracles, and only failures pay that cost.
    """
    seq: list[ScenarioSpec] = list(specs)
    for k, spec in enumerate(seq):
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError(
                f"run_corpus expects ScenarioSpec items, got "
                f"{type(spec).__name__} at index {k}"
            )
    battery = tuple(oracles) if oracles is not None else default_oracles()
    tasks = [(spec, battery) for spec in seq]
    tracer = _trace.get_tracer()
    with tracer.span("verify.run_corpus", specs=len(seq), oracles=len(battery)):
        if workers is None and backend is None:
            verdict_rows = parallel_map(_check_task, tasks)
        else:
            with configured(workers=workers, backend=backend, min_parallel_work=1):
                verdict_rows = parallel_map(_check_task, tasks)

    results = tuple(
        SpecResult(index=k, spec=spec, verdicts=row)
        for k, (spec, row) in enumerate(zip(seq, verdict_rows))
    )

    failures: list[CorpusFailure] = []
    by_name = {oracle.name: oracle for oracle in battery}
    for result in results:
        for verdict in result.verdicts:
            if not verdict.failed:
                continue
            oracle = by_name[verdict.oracle]
            minimized = result.spec
            if shrink:
                minimized = shrink_spec(
                    result.spec,
                    functools.partial(_still_fails, oracle),
                    max_attempts=max_shrink_attempts,
                )
            failure = CorpusFailure(
                index=result.index,
                oracle=verdict.oracle,
                detail=verdict.detail,
                spec=result.spec,
                minimized=minimized,
            )
            if repro_dir is not None:
                failure = replace(
                    failure,
                    repro_path=save_repro(failure, repro_dir, store=store),
                )
            elif store is not None:
                _store_repro(
                    store, failure.minimized,
                    oracle=failure.oracle, detail=failure.detail,
                )
            failures.append(failure)
    trace_path: Path | None = None
    if failures and repro_dir is not None and tracer.enabled and len(tracer) > 0:
        # a failing, traced run leaves its Perfetto timeline next to the
        # repro files — open it in ui.perfetto.dev to see what the fan-out
        # was doing when the oracle tripped
        trace_path = _trace.write_trace_json(
            tracer.spans(), Path(repro_dir) / "trace_run_corpus.json"
        )
    return CorpusReport(
        results=results, failures=tuple(failures), trace_path=trace_path
    )
