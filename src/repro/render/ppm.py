"""Binary PPM (P6) image writing — dependency-free "screenshots".

The benches and examples save rendered frames as ``.ppm`` so figure output is
inspectable with any image viewer without adding an imaging dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import RenderError

__all__ = ["write_ppm", "read_ppm"]


def write_ppm(pixels: np.ndarray, path: str | Path) -> Path:
    """Write an ``(h, w, 3)`` uint8 array as a P6 PPM file."""
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise RenderError(f"pixels must be (h, w, 3), got {arr.shape}")
    arr = arr.astype(np.uint8, copy=False)
    h, w, _ = arr.shape
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(arr.tobytes())
    return path


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a P6 PPM back into an ``(h, w, 3)`` uint8 array (round-trip tests)."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise RenderError(f"{path} is not a P6 PPM file")
    # header: magic, width, height, maxval — whitespace separated, '#' comments
    fields: list[bytes] = []
    pos = 2
    while len(fields) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    pos += 1  # single whitespace after maxval
    w, h, maxval = (int(f) for f in fields)
    if maxval != 255:
        raise RenderError(f"only 8-bit PPM supported, got maxval {maxval}")
    pixels = np.frombuffer(data[pos : pos + w * h * 3], dtype=np.uint8)
    if pixels.size != w * h * 3:
        raise RenderError(f"{path}: truncated pixel data")
    return pixels.reshape(h, w, 3).copy()
