"""The 2-D top-down view: "how they would generally see a matrix in a
spreadsheet, a textbook, or a presentation" (paper Section V).

Renders a :class:`~repro.core.TrafficMatrix` as a boxed grid — axis labels on
both edges, packet count in each cell, cell colour from the module's colour
grid.  This is the view the game opens with, and the data under every 2-D
screenshot in Figs. 5-10.
"""

from __future__ import annotations

from repro.core.traffic_matrix import TrafficMatrix
from repro.render.ansi import RESET, bg_rgb, fg_rgb

__all__ = ["render_matrix_2d", "render_matrix_compact", "CELL_RGB"]

#: Cell backgrounds per colour code, matched to the voxel palette.
CELL_RGB: dict[int, tuple[int, int, int]] = {
    0: (90, 90, 98),    # grey
    1: (58, 112, 224),  # blue
    2: (224, 64, 56),   # red
    3: (255, 200, 40),  # yellow (extended palette)
    4: (40, 160, 90),   # green (extended palette)
}

_TEXT_RGB = (240, 240, 240)


def render_matrix_2d(
    matrix: TrafficMatrix,
    *,
    ansi: bool = True,
    show_zeros: bool = False,
    cell_width: int = 4,
) -> str:
    """Boxed spreadsheet view with labels, counts, and colour-coded cells.

    ``show_zeros=False`` leaves empty cells blank (matching the game's empty
    pallets); with ANSI off the colour code is shown as a one-letter suffix
    (``g``/``b``/``r``) so the structure survives in plain text.
    """
    n = matrix.n
    labels = matrix.labels
    row_w = max(len(lb) for lb in labels)
    suffix = {0: "g", 1: "b", 2: "r", 3: "y", 4: "n"}  # n = greeN (g is grey)

    def cell_text(i: int, j: int) -> str:
        count = int(matrix.packets[i, j])
        if count == 0 and not show_zeros:
            body = ""
        else:
            body = str(count)
        if not ansi:
            body += suffix[int(matrix.colors[i, j])] if body else ""
        return body.center(cell_width)

    top = " " * (row_w + 1) + "┌" + "┬".join(["─" * cell_width] * n) + "┐"
    sep = " " * (row_w + 1) + "├" + "┼".join(["─" * cell_width] * n) + "┤"
    bottom = " " * (row_w + 1) + "└" + "┴".join(["─" * cell_width] * n) + "┘"

    header_cells = " ".join(lb.center(cell_width) for lb in labels)
    lines = [" " * (row_w + 2) + header_cells, top]
    for i in range(n):
        cells: list[str] = []
        for j in range(n):
            body = cell_text(i, j)
            if ansi:
                rgb = CELL_RGB[int(matrix.colors[i, j])]
                cells.append(f"{bg_rgb(*rgb)}{fg_rgb(*_TEXT_RGB)}{body}{RESET}")
            else:
                cells.append(body)
        lines.append(labels[i].rjust(row_w) + " │" + "│".join(cells) + "│")
        lines.append(sep if i < n - 1 else bottom)
    return "\n".join(lines)


def render_matrix_compact(matrix: TrafficMatrix, *, ansi: bool = False) -> str:
    """One character per cell — digit for count (``#`` for 10+), ``·`` empty.

    The at-a-glance form used in logs and docstrings; with ANSI on, cells are
    tinted by their colour code.
    """
    lines: list[str] = []
    for i in range(matrix.n):
        row: list[str] = []
        for j in range(matrix.n):
            count = int(matrix.packets[i, j])
            ch = "·" if count == 0 else (str(count) if count < 10 else "#")
            if ansi and count:
                rgb = CELL_RGB[int(matrix.colors[i, j])]
                ch = f"{fg_rgb(*rgb)}{ch}{RESET}"
            row.append(ch)
        lines.append(" ".join(row))
    return "\n".join(lines)
