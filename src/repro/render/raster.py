"""Z-buffered point rasterisation into character and pixel buffers.

The warehouse renders as a voxel point cloud: every visible voxel projects to
one cell, nearest-depth wins.  The z-test is vectorized by sorting points
far-to-near and letting later scatters overwrite earlier ones — NumPy fancy
assignment applies in index order, so the nearest point lands last.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RenderError
from repro.render.ansi import RESET, fg_rgb

__all__ = ["CharBuffer", "rasterize_points"]

#: Character aspect correction: terminal cells are ~twice as tall as wide.
CHAR_ASPECT = 0.5


class CharBuffer:
    """A grid of glyph + RGB cells renderable as plain or ANSI text."""

    def __init__(self, width: int, height: int, *, fill: str = " ") -> None:
        if width < 1 or height < 1:
            raise RenderError(f"char buffer needs positive dimensions, got {width}x{height}")
        self.width = width
        self.height = height
        self.glyphs = np.full((height, width), fill, dtype="<U1")
        self.colors = np.zeros((height, width, 3), dtype=np.uint8)
        self.painted = np.zeros((height, width), dtype=bool)

    def put(self, x: int, y: int, glyph: str, rgb: tuple[int, int, int] = (255, 255, 255)) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self.glyphs[y, x] = glyph[:1]
            self.colors[y, x] = rgb
            self.painted[y, x] = True

    def text(self, x: int, y: int, s: str, rgb: tuple[int, int, int] = (255, 255, 255)) -> None:
        """Write a horizontal string (clipped at the buffer edge)."""
        for k, ch in enumerate(s):
            self.put(x + k, y, ch, rgb)

    def to_plain(self) -> str:
        """Glyphs only — what the tests assert against."""
        return "\n".join("".join(row) for row in self.glyphs)

    def to_ansi(self) -> str:
        """Glyphs with 24-bit foreground colours for painted cells."""
        lines: list[str] = []
        for y in range(self.height):
            parts: list[str] = []
            for x in range(self.width):
                ch = str(self.glyphs[y, x])
                if self.painted[y, x]:
                    r, g, b = (int(v) for v in self.colors[y, x])
                    parts.append(f"{fg_rgb(r, g, b)}{ch}{RESET}")
                else:
                    parts.append(ch)
            lines.append("".join(parts))
        return "\n".join(lines)


def rasterize_points(
    u: np.ndarray,
    v: np.ndarray,
    depth: np.ndarray,
    rgb: np.ndarray,
    *,
    width: int,
    height: int,
    scale: float = 1.0,
    glyph: str = "█",
    supersample: int = 1,
) -> CharBuffer:
    """Scatter projected points into a :class:`CharBuffer`, nearest wins.

    Points are auto-centred: the cloud's bounding box is fitted into the
    buffer at the given *scale* (cells per world unit; u is additionally
    doubled to counter the terminal cell aspect).  ``supersample`` renders at
    an integer multiple then keeps the nearest sample per cell, smoothing
    ragged voxel edges at small sizes.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    depth = np.asarray(depth, dtype=np.float64)
    rgb = np.asarray(rgb, dtype=np.uint8)
    buf = CharBuffer(width, height)
    if u.size == 0:
        return buf
    ss = max(1, int(supersample))
    w, h = width * ss, height * ss
    # two cells per unit horizontally, one vertically: 2:1 cell aspect correction
    su = u * 2.0 * scale * ss
    sv = v * scale * ss
    # fit: centre the cloud in the buffer
    su = su - su.min()
    sv = sv - sv.min()
    span_u = max(su.max(), 1e-9)
    span_v = max(sv.max(), 1e-9)
    fit = min((w - 1) / span_u, (h - 1) / span_v, 1.0)
    su = su * fit + (w - 1 - span_u * fit) / 2.0
    sv = sv * fit + (h - 1 - span_v * fit) / 2.0
    xi = np.clip(np.round(su).astype(np.int64), 0, w - 1)
    yi = np.clip(np.round(sv).astype(np.int64), 0, h - 1)
    order = np.argsort(depth, kind="stable")  # far → near; near assigns last
    xi, yi, rgb_o = xi[order], yi[order], rgb[order]
    grid_color = np.zeros((h, w, 3), dtype=np.uint8)
    grid_hit = np.zeros((h, w), dtype=bool)
    grid_color[yi, xi] = rgb_o
    grid_hit[yi, xi] = True
    if ss > 1:
        grid_hit = grid_hit.reshape(height, ss, width, ss).any(axis=(1, 3))
        # unhit samples are black (0), so a channel-wise max picks a hit colour
        grid_color = grid_color.reshape(height, ss, width, ss, 3).max(axis=(1, 3))
    ys, xs = np.nonzero(grid_hit)
    buf.glyphs[ys, xs] = glyph
    buf.colors[ys, xs] = grid_color[ys, xs]
    buf.painted[ys, xs] = True
    return buf
