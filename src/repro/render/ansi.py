"""ANSI terminal colour helpers shared by the 2-D and 3-D views."""

from __future__ import annotations

import re

__all__ = ["colorize", "strip_ansi", "fg_rgb", "bg_rgb", "RESET"]

RESET = "\x1b[0m"

_ANSI_RE = re.compile(r"\x1b\[[0-9;]*m")


def fg_rgb(r: int, g: int, b: int) -> str:
    """24-bit foreground colour escape."""
    return f"\x1b[38;2;{r};{g};{b}m"


def bg_rgb(r: int, g: int, b: int) -> str:
    """24-bit background colour escape."""
    return f"\x1b[48;2;{r};{g};{b}m"


def colorize(text: str, *, fg: tuple[int, int, int] | None = None, bg: tuple[int, int, int] | None = None) -> str:
    """Wrap text in colour escapes (no-op when both colours are None)."""
    if fg is None and bg is None:
        return text
    prefix = (fg_rgb(*fg) if fg else "") + (bg_rgb(*bg) if bg else "")
    return f"{prefix}{text}{RESET}"


def strip_ansi(text: str) -> str:
    """Remove every ANSI escape (tests compare plain glyphs)."""
    return _ANSI_RE.sub("", text)
