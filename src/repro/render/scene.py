"""Scene rendering: project a warehouse scene tree into text or pixels.

Walks the engine scene, instantiates each :class:`MeshInstance3D`'s voxel
asset (applying material overrides by recolouring, exactly what the game's
material swap does visually), transforms voxels to world space, and
rasterises through the camera.  Produces ASCII frames for the terminal and
RGB pixel frames for PPM screenshots.
"""

from __future__ import annotations

import numpy as np

from repro.engine.node import MeshInstance3D, Node
from repro.engine.resources import StandardMaterial3D
from repro.render.camera import OrthoCamera
from repro.render.raster import CharBuffer, rasterize_points
from repro.voxel.assets import asset
from repro.voxel.model import VoxelModel

__all__ = ["collect_voxels", "render_scene_ascii", "render_scene_pixels", "MATERIAL_COLOR_INDEX"]

#: Material albedo name → palette index used when overriding an asset's colour.
MATERIAL_COLOR_INDEX = {
    "wood": 1,
    "grey": 2,
    "blue": 3,
    "red": 4,
    "black": 5,
    "yellow": 9,   # extended palette -> hazard-yellow voxels
    "green": 10,   # extended palette -> green voxels
}

#: Voxel scale: one asset voxel is 1/8 world unit (pallets are 1 unit wide).
VOXEL_SCALE = 1.0 / 8.0


def _model_for(instance: MeshInstance3D) -> VoxelModel | None:
    if not instance.mesh:
        return None
    override = instance.material_override
    color = None
    if isinstance(override, StandardMaterial3D):
        color = MATERIAL_COLOR_INDEX.get(override.albedo)
    try:
        return asset(instance.mesh, color=color)
    except KeyError:
        return None


def collect_voxels(root: Node) -> tuple[np.ndarray, np.ndarray]:
    """Gather every visible mesh's voxels in world space.

    Returns ``(points (n, 3) float64, rgb (n, 3) uint8)``.  A node hidden via
    ``visible = False`` hides its whole subtree, matching Godot.
    """
    points: list[np.ndarray] = []
    rgbs: list[np.ndarray] = []

    def walk(node: Node, hidden: bool) -> None:
        node_hidden = hidden or (getattr(node, "visible", True) is False)
        if isinstance(node, MeshInstance3D) and not node_hidden:
            model = _model_for(node)
            if model is not None and not model.is_empty():
                xs, ys, zs, colors = model.filled()
                base = node.global_position
                sx, _, sz = model.size
                # centre the asset footprint on the node position
                pts = np.stack(
                    [
                        (xs - sx / 2.0) * VOXEL_SCALE * node.scale + base.x,
                        ys * VOXEL_SCALE * node.scale + base.y,
                        (zs - sz / 2.0) * VOXEL_SCALE * node.scale + base.z,
                    ],
                    axis=1,
                )
                pal = np.zeros((len(model.palette) + 1, 3), dtype=np.uint8)
                pal[1:] = np.asarray(model.palette, dtype=np.uint8)
                points.append(pts)
                rgbs.append(pal[colors])
        for child in node.get_children():
            walk(child, node_hidden)

    walk(root, False)
    if not points:
        return np.empty((0, 3)), np.empty((0, 3), dtype=np.uint8)
    return np.concatenate(points, axis=0), np.concatenate(rgbs, axis=0)


def render_scene_ascii(
    root: Node,
    camera: OrthoCamera,
    *,
    width: int = 100,
    height: int = 40,
    supersample: int = 2,
) -> CharBuffer:
    """Rasterise the scene into a character buffer through *camera*."""
    points, rgb = collect_voxels(root)
    if points.shape[0] == 0:
        return CharBuffer(width, height)
    u, v, depth = camera.project(points)
    return rasterize_points(
        u, v, depth, rgb, width=width, height=height, supersample=supersample
    )


def render_scene_pixels(
    root: Node,
    camera: OrthoCamera,
    *,
    width: int = 400,
    height: int = 300,
    background: tuple[int, int, int] = (18, 18, 22),
) -> np.ndarray:
    """Rasterise the scene into an ``(h, w, 3)`` pixel frame (for PPM output).

    Same projection as the ASCII path, but at pixel resolution with square
    pixels (no cell-aspect doubling).
    """
    points, rgb = collect_voxels(root)
    frame = np.zeros((height, width, 3), dtype=np.uint8)
    frame[:, :] = background
    if points.shape[0] == 0:
        return frame
    u, v, depth = camera.project(points)
    su = u - u.min()
    sv = v - v.min()
    span_u = max(float(su.max()), 1e-9)
    span_v = max(float(sv.max()), 1e-9)
    fit = min((width - 1) / span_u, (height - 1) / span_v)
    xi = np.clip(np.round(su * fit + (width - 1 - span_u * fit) / 2).astype(np.int64), 0, width - 1)
    yi = np.clip(np.round(sv * fit + (height - 1 - span_v * fit) / 2).astype(np.int64), 0, height - 1)
    order = np.argsort(depth, kind="stable")
    frame[yi[order], xi[order]] = rgb[order]
    return frame
