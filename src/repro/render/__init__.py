"""Software rendering: 2-D spreadsheet view, 3-D isometric view, PPM output."""

from repro.render.ansi import RESET, bg_rgb, colorize, fg_rgb, strip_ansi
from repro.render.ascii2d import CELL_RGB, render_matrix_2d, render_matrix_compact
from repro.render.camera import ISO_PITCH, OrthoCamera, ViewMode
from repro.render.ppm import read_ppm, write_ppm
from repro.render.raster import CharBuffer, rasterize_points
from repro.render.scene import (
    collect_voxels,
    render_scene_ascii,
    render_scene_pixels,
)

__all__ = [
    "render_matrix_2d",
    "render_matrix_compact",
    "CELL_RGB",
    "OrthoCamera",
    "ViewMode",
    "ISO_PITCH",
    "CharBuffer",
    "rasterize_points",
    "collect_voxels",
    "render_scene_ascii",
    "render_scene_pixels",
    "write_ppm",
    "read_ppm",
    "colorize",
    "strip_ansi",
    "fg_rgb",
    "bg_rgb",
    "RESET",
]
