"""Orthographic camera with the game's two view modes.

"The student has the ability to go into a 3D mode by pressing the spacebar
key.  The student can rotate the view using the Q and E keys."  The camera
holds that state: ``mode`` (2-D top-down vs 3-D isometric) and a yaw in
45-degree steps.  Projection is a single vectorized rotate-and-drop matmul.
"""

from __future__ import annotations

import math
from enum import Enum

import numpy as np

from repro.engine.math3d import Basis

__all__ = ["ViewMode", "OrthoCamera", "ISO_PITCH"]

#: Classic isometric elevation: atan(1/sqrt(2)) ≈ 35.26 degrees.
ISO_PITCH = math.atan(1.0 / math.sqrt(2.0))

#: One Q/E key press rotates by an eighth of a turn.
YAW_STEP = math.pi / 4.0


class ViewMode(Enum):
    TOP_DOWN_2D = "2d"
    ISOMETRIC_3D = "3d"


class OrthoCamera:
    """View state plus the world→screen orthographic projection."""

    def __init__(self, *, mode: ViewMode = ViewMode.TOP_DOWN_2D, yaw_steps: int = 0, zoom: float = 1.0) -> None:
        self.mode = mode
        self.yaw_steps = yaw_steps % 8
        self.zoom = zoom

    # -- the three game controls ---------------------------------------- #

    def toggle_mode(self) -> ViewMode:
        """SPACE: flip between the 2-D top-down and 3-D isometric views."""
        self.mode = (
            ViewMode.ISOMETRIC_3D if self.mode is ViewMode.TOP_DOWN_2D else ViewMode.TOP_DOWN_2D
        )
        return self.mode

    def rotate_left(self) -> int:
        """Q: rotate the 3-D view one step counter-clockwise."""
        self.yaw_steps = (self.yaw_steps - 1) % 8
        return self.yaw_steps

    def rotate_right(self) -> int:
        """E: rotate the 3-D view one step clockwise."""
        self.yaw_steps = (self.yaw_steps + 1) % 8
        return self.yaw_steps

    # -- projection -------------------------------------------------------- #

    @property
    def yaw(self) -> float:
        return self.yaw_steps * YAW_STEP

    def basis(self) -> Basis:
        """The view rotation: yaw about +Y, then pitch about +X.

        2-D mode looks straight down (pitch 90°) with no yaw — the
        spreadsheet orientation; 3-D mode uses the isometric pitch and the
        current Q/E yaw.
        """
        if self.mode is ViewMode.TOP_DOWN_2D:
            return Basis.rotation_x(math.pi / 2.0)
        return Basis.rotation_x(ISO_PITCH) @ Basis.rotation_y(self.yaw)

    def project(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project ``(n, 3)`` world points → ``(u, v, depth)`` arrays.

        ``u`` grows right, ``v`` grows *down* (screen convention), ``depth``
        grows toward the viewer (larger = nearer, painter-friendly).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"expected (n, 3) points, got {pts.shape}")
        rotated = self.basis().apply_many(pts) * self.zoom
        u = rotated[:, 0]
        v = -rotated[:, 1]
        depth = rotated[:, 2]
        return u, v, depth
