"""Vectorized sparse kernels (COO build, CSR compute) generic over semirings.

These kernels follow the optimization guidance for numerical Python: build in
COO (cheap concatenation), compute in CSR (contiguous row segments), and keep
every hot path inside NumPy — fancy indexing, ``np.repeat`` expansion,
``lexsort`` and ``ufunc.reduceat`` — with no per-element Python loops.

The matrix product uses the classic **ESC** (expand, sort, compress) sparse
GEMM: every product term ``mult(A(i,k), B(k,j))`` is materialised by a single
``np.repeat`` gather, then duplicates are combined with the additive monoid's
``reduceat``.  This is the same dataflow GraphBLAS implementations use, which
keeps the semiring generic: ``min.plus`` shortest paths and ``plus.times``
packet counting share the code path.

When the process opts in via :func:`repro.runtime.configure`, the heavy
kernels (``coalesce``, ``mxm``, ``mxv``, the element-wise ops) transparently
dispatch to the row-blocked parallel engine in :mod:`repro.assoc.blocked`.
Blocked execution preserves the serial kernels' exact per-row term order, so
both paths return bit-identical matrices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.assoc.semiring import Monoid, PLUS_MONOID, PLUS_TIMES, Semiring
from repro.errors import SparseFormatError
from repro.runtime.config import parallel_config

if TYPE_CHECKING:  # pragma: no cover
    import scipy.sparse as sp

__all__ = ["coalesce", "CSRMatrix", "masked_select"]


def coalesce(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    add: Monoid = PLUS_MONOID,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triples row-major and combine duplicate coordinates with *add*.

    Returns ``(rows, cols, vals)`` in canonical order (sorted by row, then
    column, no duplicates).  This is the single entry point through which all
    kernels normalise their output, so canonical order is an invariant of
    every :class:`CSRMatrix`.
    """
    n_rows, n_cols = shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals)
    if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
        raise SparseFormatError(
            f"triple arrays must be equal-length 1-D, got {rows.shape}, {cols.shape}, {vals.shape}"
        )
    if rows.size == 0:
        return rows, cols, vals
    if rows.min() < 0 or rows.max() >= n_rows or cols.min() < 0 or cols.max() >= n_cols:
        raise SparseFormatError(f"triple coordinates out of bounds for shape {shape}")
    cfg = parallel_config(rows.size) if n_rows > 1 else None
    if cfg is not None:
        from repro.assoc.blocked import parallel_coalesce

        return parallel_coalesce(rows, cols, vals, shape, add, cfg)
    return _coalesce_core(rows, cols, vals, shape, add)


def _coalesce_core(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    add: Monoid,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Serial coalesce over already-validated ``int64`` index arrays."""
    if rows.size == 0:
        return rows, cols, vals
    n_cols = shape[1]
    key = rows * np.int64(n_cols) + cols
    order = np.argsort(key, kind="stable")
    key = key[order]
    vals = vals[order]
    boundary = np.empty(key.size, dtype=bool)
    boundary[0] = True
    np.not_equal(key[1:], key[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    if starts.size == key.size:  # no duplicates
        uniq_key = key
        out_vals = vals
    else:
        uniq_key = key[starts]
        indptr = np.append(starts, key.size)
        out_vals = add.reduceat(vals, indptr)
    return uniq_key // n_cols, uniq_key % n_cols, out_vals


class CSRMatrix:
    """Compressed-sparse-row matrix with semiring-generic kernels.

    Invariants: ``indices`` sorted within each row, no duplicate coordinates,
    no constraints on stored values (explicit zeros are allowed and can be
    removed with :meth:`prune`).
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_t_cache")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        _trusted: bool = False,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self._t_cache: "CSRMatrix | None" = None
        if not _trusted:
            self._validate()

    def __getstate__(self):
        # the transpose cache is derivable (and mutually referential); keep it
        # out of pickles so process-backend task payloads stay lean
        return (self.shape, self.indptr, self.indices, self.data)

    def __setstate__(self, state) -> None:
        shape, indptr, indices, data = state
        self.shape = shape
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._t_cache = None

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_rows + 1,):
            raise SparseFormatError(
                f"indptr length {self.indptr.size} != n_rows+1 = {n_rows + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise SparseFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise SparseFormatError("indices and data length mismatch")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise SparseFormatError(f"column index out of bounds for shape {self.shape}")
            # sorted-within-row, no duplicates: strict increase except at row starts
            nondecreasing = np.diff(self.indices) > 0
            row_starts = np.zeros(self.indices.size - 1, dtype=bool)
            starts = self.indptr[1:-1]
            # gap i sits between indices[i] and indices[i+1]; a row beginning
            # at index s exempts gap s-1.  s == 0 (leading empty rows) has no
            # preceding gap — without the lower bound it wrapped to gap -1,
            # crashing at nnz == 1 and silently exempting the *last* gap
            # otherwise.
            exempt = starts[(starts > 0) & (starts < self.indices.size)]
            row_starts[exempt - 1] = True
            if not np.all(nondecreasing | row_starts):
                raise SparseFormatError("indices must be strictly increasing within each row")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        add: Monoid = PLUS_MONOID,
    ) -> "CSRMatrix":
        """Build from COO triples, combining duplicates with *add*."""
        rows, cols, vals = coalesce(rows, cols, vals, shape, add)
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        if rows.size:
            np.cumsum(np.bincount(rows, minlength=shape[0]), out=indptr[1:])
        return cls(shape, indptr, cols, vals, _trusted=True)

    @classmethod
    def from_dense(cls, dense: np.ndarray, zero: object = 0) -> "CSRMatrix":
        """Build from a dense array, dropping entries equal to *zero*."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise SparseFormatError(f"dense input must be 2-D, got {dense.ndim}-D")
        mask = dense != zero
        rows, cols = np.nonzero(mask)
        return cls.from_triples(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def empty(cls, shape: tuple[int, int], dtype: np.dtype | type = np.int64) -> "CSRMatrix":
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=dtype),
            _trusted=True,
        )

    @classmethod
    def identity(cls, n: int, dtype: np.dtype | type = np.int64) -> "CSRMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n, dtype=dtype), _trusted=True)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO view ``(rows, cols, vals)`` in canonical order."""
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_nnz())
        return rows, self.indices.copy(), self.data.copy()

    def to_dense(self, zero: object = 0) -> np.ndarray:
        out = np.full(self.shape, zero, dtype=self.dtype)
        rows, cols, vals = self.triples()
        out[rows, cols] = vals
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy(), _trusted=True
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"

    # ------------------------------------------------------------------ #
    # operator sugar (defined via the expression layer)
    # ------------------------------------------------------------------ #

    def __matmul__(self, other: "CSRMatrix") -> "CSRMatrix":
        """``A @ B`` — the default ``plus.times`` semiring product."""
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return self.mxm(other, PLUS_TIMES)

    def __add__(self, other: "CSRMatrix") -> "CSRMatrix":
        """``A + B`` — element-wise union under the ``plus`` monoid."""
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return self.ewise_union(other, PLUS_MONOID)

    def __mul__(self, other):  # noqa: ANN001
        """``A * B`` — element-wise intersection under ``times``; scalars scale."""
        if isinstance(other, CSRMatrix):
            return self.ewise_intersect(other, PLUS_TIMES.mult)
        if isinstance(other, (int, float, np.number)):
            return CSRMatrix(
                self.shape,
                self.indptr.copy(),
                self.indices.copy(),
                self.data * other,
                _trusted=True,
            )
        return NotImplemented

    __rmul__ = __mul__

    # ------------------------------------------------------------------ #
    # structural ops
    # ------------------------------------------------------------------ #

    def transpose(self) -> "CSRMatrix":
        """The transpose, computed once and cached.

        :class:`CSRMatrix` is treated as immutable by the whole engine, so
        the transpose is memoized.  This is the "descriptor" half of the lazy
        expression layer: folding a transpose into an operand costs one
        CSC-style rebuild ever, not one per call — the fix for ``vxm``
        rebuilding its transpose on every product.  The memo is one-way (no
        back-link), so a matrix/transpose pair never forms a reference cycle
        and reference counting reclaims temporaries promptly.  Callers that
        mutate ``data`` in place must not rely on a previously-taken
        transpose staying in sync.
        """
        if self._t_cache is None:
            rows, cols, vals = self.triples()
            self._t_cache = CSRMatrix.from_triples(
                cols, rows, vals, (self.shape[1], self.shape[0])
            )
        return self._t_cache

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def prune(self, zero: object = 0) -> "CSRMatrix":
        """Drop stored entries equal to *zero* (the semiring's annihilator)."""
        keep = self.data != zero
        if keep.all():
            return self.copy()
        rows, cols, vals = self.triples()
        return CSRMatrix.from_triples(rows[keep], cols[keep], vals[keep], self.shape)

    def extract(self, row_idx: np.ndarray, col_idx: np.ndarray) -> "CSRMatrix":
        """Sub-matrix ``A[row_idx, :][:, col_idx]`` (GraphBLAS extract).

        Index arrays select and *reorder*; the result has shape
        ``(len(row_idx), len(col_idx))``.
        """
        row_idx = np.asarray(row_idx, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        # gather the selected rows (with repetition allowed)
        counts = self.row_nnz()[row_idx]
        total = int(counts.sum())
        out_rows = np.repeat(np.arange(row_idx.size, dtype=np.int64), counts)
        offsets = np.repeat(self.indptr[row_idx], counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
        pos = offsets + ramp
        cols = self.indices[pos]
        vals = self.data[pos]
        # remap columns: position of each old column in col_idx (drop unselected)
        col_map = np.full(self.shape[1], -1, dtype=np.int64)
        col_map[col_idx[::-1]] = np.arange(col_idx.size - 1, -1, -1, dtype=np.int64)
        new_cols = col_map[cols]
        keep = new_cols >= 0
        return CSRMatrix.from_triples(
            out_rows[keep], new_cols[keep], vals[keep], (row_idx.size, col_idx.size)
        )

    # ------------------------------------------------------------------ #
    # element-wise ops
    # ------------------------------------------------------------------ #

    def ewise_union(self, other: "CSRMatrix", add: Monoid = PLUS_MONOID) -> "CSRMatrix":
        """Element-wise combine over the union of patterns (GraphBLAS eWiseAdd).

        Eager surface: builds a one-node expression and evaluates it
        immediately, so the call exercises the same planner path as the lazy
        API (:mod:`repro.assoc.expr`).
        """
        from repro.assoc import expr

        return expr.as_expr(self).ewise(other, add, how="union").new()

    def _ewise_union_dispatch(self, other: "CSRMatrix", add: Monoid) -> "CSRMatrix":
        """The eager union kernel with runtime gating (planner dispatch target)."""
        self._check_shape(other)
        cfg = parallel_config(self.nnz + other.nnz) if self.shape[0] > 1 else None
        if cfg is not None:
            from repro.assoc.blocked import parallel_ewise_union

            return parallel_ewise_union(self, other, add, cfg)
        return self._ewise_union_serial(other, add)

    def _ewise_union_serial(self, other: "CSRMatrix", add: Monoid) -> "CSRMatrix":
        r1, c1, v1 = self.triples()
        r2, c2, v2 = other.triples()
        dtype = np.result_type(v1.dtype, v2.dtype)
        return CSRMatrix.from_triples(
            np.concatenate([r1, r2]),
            np.concatenate([c1, c2]),
            np.concatenate([v1.astype(dtype), v2.astype(dtype)]),
            self.shape,
            add,
        )

    def ewise_intersect(self, other: "CSRMatrix", mult) -> "CSRMatrix":  # noqa: ANN001
        """Element-wise combine over the pattern intersection (eWiseMult)."""
        from repro.assoc import expr

        return expr.as_expr(self).ewise(other, mult, how="intersect").new()

    def _ewise_intersect_dispatch(self, other: "CSRMatrix", mult) -> "CSRMatrix":  # noqa: ANN001
        """The eager intersect kernel with runtime gating (planner dispatch target)."""
        self._check_shape(other)
        cfg = parallel_config(self.nnz + other.nnz) if self.shape[0] > 1 else None
        if cfg is not None:
            from repro.assoc.blocked import parallel_ewise_intersect

            return parallel_ewise_intersect(self, other, mult, cfg)
        return self._ewise_intersect_serial(other, mult)

    def _ewise_intersect_serial(self, other: "CSRMatrix", mult) -> "CSRMatrix":  # noqa: ANN001
        n_cols = np.int64(self.shape[1])
        r1, c1, v1 = self.triples()
        r2, c2, v2 = other.triples()
        k1 = r1 * n_cols + c1
        k2 = r2 * n_cols + c2
        common, i1, i2 = np.intersect1d(k1, k2, assume_unique=True, return_indices=True)
        vals = mult(v1[i1], v2[i2])
        return CSRMatrix.from_triples(common // n_cols, common % n_cols, vals, self.shape)

    def _check_shape(self, other: "CSRMatrix") -> None:
        if self.shape != other.shape:
            raise SparseFormatError(f"shape mismatch: {self.shape} vs {other.shape}")

    # ------------------------------------------------------------------ #
    # semiring compute kernels
    # ------------------------------------------------------------------ #

    def mxv(self, x: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        """Matrix-vector product ``y[i] = add_k mult(A[i,k], x[k])`` (dense x/y)."""
        from repro.assoc import expr

        return expr.as_expr(self).mxv(x, semiring).new()

    def _mxv_dispatch(self, x: np.ndarray, semiring: Semiring) -> np.ndarray:
        """The eager mxv kernel with runtime gating (planner dispatch target)."""
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise SparseFormatError(f"vector length {x.shape} != {(self.shape[1],)}")
        cfg = parallel_config(self.nnz) if self.shape[0] > 1 else None
        if cfg is not None:
            from repro.assoc.blocked import parallel_mxv

            return parallel_mxv(self, x, semiring, cfg)
        return self._mxv_serial(x, semiring)

    def _mxv_serial(self, x: np.ndarray, semiring: Semiring) -> np.ndarray:
        prod = semiring.mult(self.data, x[self.indices])
        prod = np.asarray(prod)
        return semiring.add.reduceat(prod, self.indptr)

    def vxm(self, x: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
        """Vector-matrix product ``y = x A`` — ``mxv`` through the transpose
        descriptor.

        The transpose is folded by the planner onto the cached transpose
        (:meth:`transpose`), so repeated ``vxm`` on the same matrix costs one
        transpose build total instead of an O(nnz) rebuild per call.
        """
        from repro.assoc import expr

        return expr.as_expr(self).T.mxv(x, semiring).new()

    def mxm(self, other: "CSRMatrix", semiring: Semiring = PLUS_TIMES) -> "CSRMatrix":
        """Sparse matrix product over *semiring* using vectorized ESC.

        Expansion: for each stored ``A(i, k)``, gather row ``k`` of ``B``; the
        per-entry gather lengths come from ``B``'s row-nnz, and the flat gather
        positions are built with a repeat/cumsum ramp.  Compression: coalesce
        with the additive monoid.  The expanded intermediate has
        ``sum_k nnz(A[:,k]) * nnz(B[k,:])`` entries — the usual sparse-GEMM
        FLOP count.

        Eager surface: evaluates a one-node expression through the planner, so
        the eager and lazy (:mod:`repro.assoc.expr`) paths share one dispatch.
        """
        from repro.assoc import expr

        return expr.as_expr(self).mxm(other, semiring).new()

    def _mxm_dispatch(self, other: "CSRMatrix", semiring: Semiring) -> "CSRMatrix":
        """The eager mxm kernel with runtime gating (planner dispatch target)."""
        if self.shape[1] != other.shape[0]:
            raise SparseFormatError(
                f"inner dimension mismatch: {self.shape} @ {other.shape}"
            )
        out_shape = (self.shape[0], other.shape[1])
        if self.nnz == 0 or other.nnz == 0:
            dtype = np.result_type(self.dtype, other.dtype)
            return CSRMatrix.empty(out_shape, dtype)
        b_row_nnz = other.row_nnz()
        counts = b_row_nnz[self.indices]  # products contributed by each A entry
        total = int(counts.sum())
        if total == 0:
            dtype = np.result_type(self.dtype, other.dtype)
            return CSRMatrix.empty(out_shape, dtype)
        cfg = parallel_config(total) if self.shape[0] > 1 else None
        if cfg is not None:
            from repro.assoc.blocked import parallel_mxm

            return parallel_mxm(self, other, semiring, cfg)
        return self._mxm_serial(other, semiring, counts, total)

    def _mxm_serial(
        self,
        other: "CSRMatrix",
        semiring: Semiring,
        counts: np.ndarray | None = None,
        total: int | None = None,
    ) -> "CSRMatrix":
        """The serial ESC product; *counts*/*total* may be precomputed by mxm."""
        out_shape = (self.shape[0], other.shape[1])
        if counts is None:
            if self.nnz == 0 or other.nnz == 0:
                return CSRMatrix.empty(out_shape, np.result_type(self.dtype, other.dtype))
            counts = other.row_nnz()[self.indices]
            total = int(counts.sum())
            if total == 0:
                return CSRMatrix.empty(out_shape, np.result_type(self.dtype, other.dtype))
        a_rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_nnz())
        out_rows = np.repeat(a_rows, counts)
        offsets = np.repeat(other.indptr[self.indices], counts)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
        b_pos = offsets + ramp
        out_cols = other.indices[b_pos]
        out_vals = np.asarray(semiring.mult(np.repeat(self.data, counts), other.data[b_pos]))
        result = CSRMatrix.from_triples(out_rows, out_cols, out_vals, out_shape, semiring.add)
        return result.prune(semiring.zero(out_vals.dtype))

    def reduce_rows(self, add: Monoid = PLUS_MONOID) -> np.ndarray:
        """Dense vector of per-row reductions (empty rows get the identity)."""
        return add.reduceat(self.data, self.indptr)

    def reduce_cols(self, add: Monoid = PLUS_MONOID) -> np.ndarray:
        """Dense vector of per-column reductions."""
        return self.transpose().reduce_rows(add)

    def reduce_scalar(self, add: Monoid = PLUS_MONOID) -> object:
        """Reduce every stored value to one scalar."""
        if self.data.size == 0:
            return add.identity(self.dtype)
        if add.op.is_ufunc:
            return add.op.func.reduce(self.data)  # type: ignore[union-attr]
        acc = self.data[0]
        for v in self.data[1:]:
            acc = add.op.func(acc, v)
        return acc

    def kron(self, other: "CSRMatrix", mult=None) -> "CSRMatrix":  # noqa: ANN001
        """Kronecker product — the graph generator workhorse (ref [50] lineage)."""
        if mult is None:
            mult = PLUS_TIMES.mult
        r1, c1, v1 = self.triples()
        r2, c2, v2 = other.triples()
        m2, n2 = other.shape
        rows = (r1[:, None] * m2 + r2[None, :]).ravel()
        cols = (c1[:, None] * n2 + c2[None, :]).ravel()
        vals = np.asarray(mult(np.repeat(v1, r2.size), np.tile(v2, r1.size)))
        return CSRMatrix.from_triples(
            rows, cols, vals, (self.shape[0] * m2, self.shape[1] * n2)
        )

    # ------------------------------------------------------------------ #
    # interop
    # ------------------------------------------------------------------ #

    def to_scipy(self) -> "sp.csr_matrix":
        """Convert to ``scipy.sparse.csr_matrix`` (for benchmarking baselines)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat: "sp.spmatrix") -> "CSRMatrix":
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            csr.shape,
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.copy(),
            _trusted=True,
        )


# ---------------------------------------------------------------------- #
# masked (fused) serial kernels
#
# These are the dispatch targets the expression planner
# (repro.assoc.planner) uses when an assignment carries a structural mask.
# They restrict *computation* to the mask's pattern — masked-out rows are
# never expanded and masked-out product terms are dropped before the
# coalesce sort — instead of materialising the full result and filtering.
# Each is bit-identical to its eager-then-filter equivalent: filtering the
# ESC expansion preserves the relative order of the surviving terms, so the
# stable sort groups and reduces them exactly as the unmasked kernel would.
# ---------------------------------------------------------------------- #


def _mask_keep(
    rows: np.ndarray,
    cols: np.ndarray,
    mask: "CSRMatrix",
    complement: bool,
    n_cols: int,
) -> np.ndarray:
    """Boolean keep-array: which ``(rows, cols)`` coordinates the mask allows.

    Membership is a ``searchsorted`` against the mask's row-major flat keys
    (canonical CSR order makes them pre-sorted) — O((nnz + m) log m), no
    dense materialisation.
    """
    n_cols = np.int64(n_cols)
    m_rows = np.repeat(np.arange(mask.shape[0], dtype=np.int64), mask.row_nnz())
    m_keys = m_rows * n_cols + mask.indices
    keys = np.asarray(rows, dtype=np.int64) * n_cols + np.asarray(cols, dtype=np.int64)
    if m_keys.size == 0:
        hit = np.zeros(keys.shape, dtype=bool)
    else:
        pos = np.searchsorted(m_keys, keys)
        hit = (pos < m_keys.size) & (m_keys[np.minimum(pos, m_keys.size - 1)] == keys)
    return ~hit if complement else hit


def masked_select(a: "CSRMatrix", mask: "CSRMatrix", complement: bool = False) -> "CSRMatrix":
    """Entries of *a* at coordinates the structural *mask* allows.

    This is GraphBLAS ``C⟨M⟩ = A`` for a leaf expression: a pure pattern
    filter, never densified.  With ``complement=True`` it keeps the entries
    *outside* the mask pattern instead.
    """
    if a.shape != mask.shape:
        raise SparseFormatError(f"mask shape {mask.shape} != operand shape {a.shape}")
    rows, cols, vals = a.triples()
    keep = _mask_keep(rows, cols, mask, complement, a.shape[1])
    return CSRMatrix.from_triples(rows[keep], cols[keep], vals[keep], a.shape)


def _mxm_out_dtype(a: "CSRMatrix", b: "CSRMatrix", mult) -> np.dtype:  # noqa: ANN001
    """The dtype ``a.mxm(b)`` would produce (probe rule of the eager kernel)."""
    if a.nnz == 0 or b.nnz == 0:
        return np.result_type(a.dtype, b.dtype)
    if int(b.row_nnz()[a.indices].sum()) == 0:
        return np.result_type(a.dtype, b.dtype)
    return np.asarray(mult(a.data[:1], b.data[:1])).dtype


def _masked_mxm_serial(
    a: "CSRMatrix",
    b: "CSRMatrix",
    semiring: Semiring,
    mask: "CSRMatrix",
    out_dtype: np.dtype | None = None,
) -> "CSRMatrix":
    """Fused masked ESC product: ``C⟨M⟩ = A ⊕.⊗ B`` without the full product.

    Rows whose mask row is empty are skipped entirely (never expanded), and
    expansion terms landing outside the mask pattern are dropped *before*
    the coalesce sort — the expensive O(t log t) step only ever sees
    surviving terms.  Non-complemented masks only; the planner routes
    complement masks through the unmasked kernel plus a filter (a complement
    of a sparse mask keeps almost everything, so there is nothing to skip).
    """
    out_shape = (a.shape[0], b.shape[1])
    if mask.shape != out_shape:
        raise SparseFormatError(f"mask shape {mask.shape} != product shape {out_shape}")
    if out_dtype is None:
        out_dtype = _mxm_out_dtype(a, b, semiring.mult)
    sel = np.flatnonzero((a.row_nnz() > 0) & (mask.row_nnz() > 0))
    if a.nnz == 0 or b.nnz == 0 or sel.size == 0:
        return CSRMatrix.empty(out_shape, out_dtype)
    # gather the stored entries of the selected (mask-active) rows of A
    a_counts = a.row_nnz()[sel]
    total_a = int(a_counts.sum())
    a_offsets = np.repeat(a.indptr[sel], a_counts)
    a_ramp = np.arange(total_a, dtype=np.int64) - np.repeat(
        np.cumsum(a_counts) - a_counts, a_counts
    )
    a_pos = a_offsets + a_ramp
    a_cols = a.indices[a_pos]
    a_rows = np.repeat(sel.astype(np.int64), a_counts)
    # ESC expansion restricted to those rows
    counts = b.row_nnz()[a_cols]
    total = int(counts.sum())
    if total == 0:
        return CSRMatrix.empty(out_shape, out_dtype)
    out_rows = np.repeat(a_rows, counts)
    offsets = np.repeat(b.indptr[a_cols], counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    b_pos = offsets + ramp
    out_cols = b.indices[b_pos]
    # drop masked-out terms before multiplying or sorting
    keep = _mask_keep(out_rows, out_cols, mask, False, out_shape[1])
    out_rows = out_rows[keep]
    out_cols = out_cols[keep]
    a_vals = np.repeat(a.data[a_pos], counts)[keep]
    b_vals = b.data[b_pos[keep]]
    out_vals = np.asarray(semiring.mult(a_vals, b_vals))
    if out_vals.size == 0:
        return CSRMatrix.empty(out_shape, out_dtype)
    result = CSRMatrix.from_triples(out_rows, out_cols, out_vals, out_shape, semiring.add)
    return result.prune(semiring.zero(out_vals.dtype))


def _masked_mxv_serial(
    a: "CSRMatrix",
    x: np.ndarray,
    semiring: Semiring,
    allow: np.ndarray,
) -> np.ndarray:
    """Masked matrix-vector product: only rows with ``allow[i]`` are computed.

    *allow* is a dense boolean row mask with any complement already applied.
    Unselected rows carry the additive identity — exactly what
    eager-then-filter would leave there.
    """
    # dtype probe on empty slices: same input dtypes as the full product
    prod_dtype = np.asarray(semiring.mult(a.data[:0], x[:0])).dtype
    out = np.full(a.shape[0], semiring.add.identity(prod_dtype), dtype=prod_dtype)
    sel = np.flatnonzero(allow)
    if sel.size == 0 or a.nnz == 0:
        return out
    counts = a.row_nnz()[sel]
    total = int(counts.sum())
    offsets = np.repeat(a.indptr[sel], counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    pos = offsets + ramp
    prod = np.asarray(semiring.mult(a.data[pos], x[a.indices[pos]]))
    seg = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    out[sel] = semiring.add.reduceat(prod, seg)
    return out


def _masked_reduce_rows_serial(a: "CSRMatrix", add: Monoid, allow: np.ndarray) -> np.ndarray:
    """Per-row reduction computed only for rows with ``allow[i]`` set.

    Unselected rows carry the monoid identity, matching eager-then-filter.
    """
    out = np.full(a.shape[0], add.identity(a.dtype), dtype=a.dtype)
    sel = np.flatnonzero(allow)
    if sel.size == 0 or a.nnz == 0:
        return out
    counts = a.row_nnz()[sel]
    total = int(counts.sum())
    offsets = np.repeat(a.indptr[sel], counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    pos = offsets + ramp
    seg = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    out[sel] = add.reduceat(a.data[pos], seg)
    return out


def _masked_intersect_serial(
    a: "CSRMatrix",
    b: "CSRMatrix",
    mult,  # noqa: ANN001
    mask: "CSRMatrix",
    complement: bool,
) -> "CSRMatrix":
    """Fused masked eWiseMult: the left operand is mask-filtered *before*
    intersecting, so ``(A ∩ mask) ∩ B == (A ∩ B) ∩ mask`` never exists
    unmasked."""
    n_cols = np.int64(a.shape[1])
    r1, c1, v1 = a.triples()
    keep = _mask_keep(r1, c1, mask, complement, a.shape[1])
    r1, c1, v1 = r1[keep], c1[keep], v1[keep]
    r2, c2, v2 = b.triples()
    k1 = r1 * n_cols + c1
    k2 = r2 * n_cols + c2
    common, i1, i2 = np.intersect1d(k1, k2, assume_unique=True, return_indices=True)
    vals = mult(v1[i1], v2[i2])
    return CSRMatrix.from_triples(common // n_cols, common % n_cols, vals, a.shape)


def _union_all_serial(
    parts: Sequence["CSRMatrix"],
    add: Monoid,
    mask: "CSRMatrix | None" = None,
    complement: bool = False,
) -> "CSRMatrix":
    """N-ary fused eWiseAdd: one concatenate + one coalesce for *parts*.

    The concatenation order is the operand order, so duplicate coordinates
    reduce left-to-right — bit-identical to the pairwise
    ``ewise_union`` left-fold the chain would otherwise run, at a single
    sort instead of ``len(parts) - 1`` of them.  With a mask, each operand's
    triples are filtered before the sort (fused masked union).
    """
    shape = parts[0].shape
    dtype = np.result_type(*(p.dtype for p in parts))
    rows_l: list[np.ndarray] = []
    cols_l: list[np.ndarray] = []
    vals_l: list[np.ndarray] = []
    for p in parts:
        r, c, v = p.triples()
        if mask is not None:
            keep = _mask_keep(r, c, mask, complement, shape[1])
            r, c, v = r[keep], c[keep], v[keep]
        rows_l.append(r)
        cols_l.append(c)
        vals_l.append(v.astype(dtype))
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = np.concatenate(vals_l)
    if rows.size == 0:
        return CSRMatrix.empty(shape, dtype)
    return CSRMatrix.from_triples(rows, cols, vals, shape, add)
