"""Lazy GraphBLAS-style expressions: masks, accumulators, deferred evaluation.

The eager kernels in :mod:`repro.assoc.sparse` compute the moment they are
called, which forces every consumer to materialise intermediates and apply
masks densely after the fact.  This module adds the *describe first, execute
staged* layer on top: operations on a :class:`Mat` (or on another expression)
return :class:`MatExpr` / :class:`VecExpr` nodes instead of results, and a
small planner (:mod:`repro.assoc.planner`) walks the tree at evaluation time,
fusing masks and element-wise chains into the row-blocked kernels and
dispatching through :mod:`repro.runtime`.

The GraphBLAS assignment triple — mask, accumulator, descriptor — is spelled
the conventional way::

    from repro.assoc.expr import Mat, Mask

    C = Mat.from_csr(base)
    C(mask=M, accum=PLUS, complement=True, replace=False) << A.mxm(B)
    standalone = A.mxm(B).new(mask=M)        # evaluate without assigning

Guarantees:

* every lazy evaluation is **bit-identical** to its eager equivalent
  (materialise, then filter by the mask) — including float rounding, because
  mask filtering preserves the relative order of surviving expansion terms;
* a **non-complemented sparse mask never materialises the unmasked result**:
  the planner emits the fused masked kernels, which skip masked-out rows and
  drop masked-out terms before the coalesce sort;
* the serial and blocked-parallel paths of every fused kernel agree bit for
  bit, extending the PR 1 guarantee to masked execution.

Eager :class:`~repro.assoc.sparse.CSRMatrix` methods (``mxm``, the
element-wise ops, ``mxv``/``vxm``) are now thin wrappers that build a
one-node expression and evaluate it immediately, so the whole existing test
suite exercises this layer as a compatibility gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.assoc.planner import Plan
    from repro.staticcheck.shapes import ExprType

from repro.assoc.semiring import (
    BinaryOp,
    Monoid,
    PLUS_MONOID,
    PLUS_TIMES,
    Semiring,
)
from repro.assoc.sparse import CSRMatrix, _mask_keep
from repro.errors import ExpressionError, SparseFormatError

__all__ = [
    "Mask",
    "Mat",
    "Vec",
    "MatExpr",
    "VecExpr",
    "MatLeaf",
    "MxM",
    "EWiseMult",
    "UnionAll",
    "TransposeExpr",
    "MxV",
    "ReduceRows",
    "as_expr",
    "as_mask",
    "lazy",
    "union_all",
    "apply_assign",
]


# --------------------------------------------------------------------------- #
# masks
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Mask:
    """A structural mask: the *pattern* of a sparse matrix, optionally
    complemented.

    Stored values are ignored (GraphBLAS "structure-only" semantics) — a
    coordinate is allowed when the pattern holds an entry there, or, with
    ``complement=True``, when it does not.
    """

    pattern: CSRMatrix
    complement: bool = False

    @property
    def shape(self) -> tuple[int, int]:
        return self.pattern.shape

    def transpose(self) -> "Mask":
        """The mask of the transposed coordinate space (pattern transpose is
        cached on the CSR, so folding costs one build ever)."""
        return Mask(self.pattern.transpose(), self.complement)


def as_mask(mask: object, complement: bool = False) -> Mask | None:
    """Coerce *mask* to a :class:`Mask` (or ``None``).

    Accepts a :class:`Mask` (the ``complement`` argument flips it), a
    :class:`~repro.assoc.sparse.CSRMatrix`, anything exposing a ``.csr``
    attribute (:class:`Mat`, :class:`~repro.assoc.array.AssociativeArray`),
    or a dense array whose non-zero / ``True`` cells form the pattern.
    """
    if mask is None:
        if complement:
            raise ExpressionError("complement=True requires a mask")
        return None
    if isinstance(mask, Mask):
        return Mask(mask.pattern, mask.complement != complement)
    if isinstance(mask, CSRMatrix):
        return Mask(mask, complement)
    csr = getattr(mask, "csr", None)
    if isinstance(csr, CSRMatrix):
        return Mask(csr, complement)
    arr = np.asarray(mask)
    if arr.ndim == 2:
        return Mask(CSRMatrix.from_dense(arr != 0), complement)
    raise ExpressionError(
        f"cannot interpret {type(mask).__name__} as a structural mask"
    )


def _as_vec_mask(mask: object, complement: bool, size: int) -> np.ndarray | None:
    """Dense boolean row mask for vector results (complement pre-applied)."""
    if mask is None:
        if complement:
            raise ExpressionError("complement=True requires a mask")
        return None
    arr = np.asarray(mask)
    if arr.shape != (size,):
        raise ExpressionError(f"vector mask length {arr.shape} != {(size,)}")
    allow = arr.astype(bool)
    return ~allow if complement else allow


# --------------------------------------------------------------------------- #
# matrix expressions
# --------------------------------------------------------------------------- #


class MatExpr:
    """A deferred matrix computation.  Operations return further expressions;
    :meth:`new` evaluates through the planner."""

    __slots__ = ()

    @property
    def shape(self) -> tuple[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    # -- builders -------------------------------------------------------- #

    def mxm(self, other: object, semiring: Semiring = PLUS_TIMES) -> "MxM":
        """Deferred semiring matrix product."""
        rhs = as_expr(other)
        if self.ncols != rhs.nrows:
            raise SparseFormatError(
                f"inner dimension mismatch: {self.shape} @ {rhs.shape}"
            )
        return MxM(self, rhs, semiring)

    def ewise(self, other: object, op: object = PLUS_MONOID, how: str | None = None) -> "MatExpr":
        """Deferred element-wise combine.

        ``how`` defaults from the operator: a :class:`Monoid` combines over
        the pattern **union** (eWiseAdd), anything else over the
        **intersection** (eWiseMult).  Union chains with the same monoid
        collapse into one n-ary :class:`UnionAll` node, which the planner
        executes as a single concatenate + coalesce.
        """
        rhs = as_expr(other)
        if self.shape != rhs.shape:
            raise SparseFormatError(f"shape mismatch: {self.shape} vs {rhs.shape}")
        if how is None:
            how = "union" if isinstance(op, Monoid) else "intersect"
        if how == "union":
            if not isinstance(op, Monoid):
                raise ExpressionError(
                    f"ewise union needs a Monoid, got {type(op).__name__}"
                )
            if isinstance(self, UnionAll) and self.add is op:
                return UnionAll(self.parts + (rhs,), op)
            return UnionAll((self, rhs), op)
        if how == "intersect":
            return EWiseMult(self, rhs, op)
        raise ExpressionError(f"ewise how must be 'union' or 'intersect', got {how!r}")

    def transpose(self) -> "MatExpr":
        return TransposeExpr(self)

    @property
    def T(self) -> "MatExpr":
        return self.transpose()

    def mxv(self, x: np.ndarray, semiring: Semiring = PLUS_TIMES) -> "MxV":
        """Deferred matrix-vector product (dense vector operand)."""
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise SparseFormatError(f"vector length {x.shape} != {(self.ncols,)}")
        return MxV(self, x, semiring)

    def reduce_rows(self, add: Monoid = PLUS_MONOID) -> "ReduceRows":
        return ReduceRows(self, add)

    def reduce_cols(self, add: Monoid = PLUS_MONOID) -> "ReduceRows":
        return ReduceRows(self.transpose(), add)

    # -- operator sugar --------------------------------------------------- #

    def __matmul__(self, other: object) -> "MxM":
        return self.mxm(other)

    def __add__(self, other: object) -> "MatExpr":
        return self.ewise(other, PLUS_MONOID)

    def __mul__(self, other: object) -> "MatExpr":
        return self.ewise(other, PLUS_TIMES.mult, how="intersect")

    # -- evaluation ------------------------------------------------------- #

    def new(self, mask: object = None, *, complement: bool = False) -> CSRMatrix:
        """Evaluate this expression, optionally through a structural mask."""
        from repro.assoc import planner

        return planner.evaluate(self, as_mask(mask, complement))

    def plan(self, mask: object = None, *, complement: bool = False) -> Plan:
        """The :class:`~repro.assoc.planner.Plan` evaluation would follow."""
        from repro.assoc import planner

        return planner.plan(self, as_mask(mask, complement))

    def typecheck(self, mask: object = None, *, complement: bool = False) -> ExprType:
        """Statically infer this tree's result shape and dtype without
        executing it (see :func:`repro.staticcheck.shapes.infer`); raises
        :class:`~repro.errors.ShapeInferenceError` naming the offending
        subtree if the tree cannot evaluate."""
        from repro.staticcheck import shapes

        return shapes.infer(self, as_mask(mask, complement))


class MatLeaf(MatExpr):
    """A concrete matrix at the leaf of an expression tree.

    ``transposed`` is the descriptor flag: the planner resolves it against
    the operand's cached transpose, so a folded transpose costs one rebuild
    ever rather than one per evaluation.
    """

    __slots__ = ("csr", "transposed")

    def __init__(self, csr: CSRMatrix, transposed: bool = False) -> None:
        self.csr = csr
        self.transposed = bool(transposed)

    @property
    def shape(self) -> tuple[int, int]:
        if self.transposed:
            return (self.csr.shape[1], self.csr.shape[0])
        return self.csr.shape

    def transpose(self) -> "MatLeaf":
        return MatLeaf(self.csr, not self.transposed)

    def resolve(self) -> CSRMatrix:
        return self.csr.transpose() if self.transposed else self.csr


class MxM(MatExpr):
    """Deferred semiring product ``left ⊕.⊗ right``."""

    __slots__ = ("left", "right", "semiring")

    def __init__(self, left: MatExpr, right: MatExpr, semiring: Semiring) -> None:
        self.left = left
        self.right = right
        self.semiring = semiring

    @property
    def shape(self) -> tuple[int, int]:
        return (self.left.nrows, self.right.ncols)


class EWiseMult(MatExpr):
    """Deferred element-wise multiply over the pattern intersection."""

    __slots__ = ("left", "right", "mult")

    def __init__(self, left: MatExpr, right: MatExpr, mult: object) -> None:
        self.left = left
        self.right = right
        self.mult = mult

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape


class UnionAll(MatExpr):
    """Deferred n-ary element-wise add: a fused union chain."""

    __slots__ = ("parts", "add")

    def __init__(self, parts: Sequence[MatExpr], add: Monoid) -> None:
        self.parts = tuple(parts)
        self.add = add
        if not self.parts:
            raise ExpressionError("UnionAll needs at least one operand")

    @property
    def shape(self) -> tuple[int, int]:
        return self.parts[0].shape


class TransposeExpr(MatExpr):
    """Transpose of a non-leaf expression (leaf transposes fold into the
    descriptor flag instead)."""

    __slots__ = ("child",)

    def __init__(self, child: MatExpr) -> None:
        self.child = child

    @property
    def shape(self) -> tuple[int, int]:
        return (self.child.ncols, self.child.nrows)

    def transpose(self) -> MatExpr:
        return self.child


# --------------------------------------------------------------------------- #
# vector expressions
# --------------------------------------------------------------------------- #


class VecExpr:
    """A deferred dense-vector computation."""

    __slots__ = ()

    @property
    def size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def new(self, mask: object = None, *, complement: bool = False) -> np.ndarray:
        """Evaluate, optionally through a dense boolean row mask."""
        from repro.assoc import planner

        return planner.evaluate_vec(
            self, _as_vec_mask(mask, complement, self.size)
        )

    def plan(self, mask: object = None, *, complement: bool = False) -> Plan:
        from repro.assoc import planner

        return planner.plan_vec(self, _as_vec_mask(mask, complement, self.size))

    def typecheck(self, mask: object = None, *, complement: bool = False) -> ExprType:
        """Statically infer result size and dtype (see
        :func:`repro.staticcheck.shapes.infer_vec`)."""
        from repro.staticcheck import shapes

        return shapes.infer_vec(self, _as_vec_mask(mask, complement, self.size))


class MxV(VecExpr):
    """Deferred matrix-vector product."""

    __slots__ = ("mat", "x", "semiring")

    def __init__(self, mat: MatExpr, x: np.ndarray, semiring: Semiring) -> None:
        self.mat = mat
        self.x = np.asarray(x)
        self.semiring = semiring

    @property
    def size(self) -> int:
        return self.mat.nrows


class ReduceRows(VecExpr):
    """Deferred per-row reduction of a matrix expression."""

    __slots__ = ("mat", "add")

    def __init__(self, mat: MatExpr, add: Monoid) -> None:
        self.mat = mat
        self.add = add

    @property
    def size(self) -> int:
        return self.mat.nrows


# --------------------------------------------------------------------------- #
# coercion helpers
# --------------------------------------------------------------------------- #


def as_expr(obj: object) -> MatExpr:
    """Coerce *obj* (expression, :class:`Mat`, or CSR) to a :class:`MatExpr`."""
    if isinstance(obj, MatExpr):
        return obj
    if isinstance(obj, Mat):
        return MatLeaf(obj.csr)
    if isinstance(obj, CSRMatrix):
        return MatLeaf(obj)
    raise ExpressionError(
        f"cannot build an expression from {type(obj).__name__}"
    )


def lazy(obj: object) -> "Mat":
    """Wrap a matrix-like object in a :class:`Mat` for the lazy surface."""
    if isinstance(obj, Mat):
        return obj
    if isinstance(obj, CSRMatrix):
        return Mat(obj)
    csr = getattr(obj, "csr", None)
    if isinstance(csr, CSRMatrix):
        return Mat(csr)
    arr = np.asarray(obj)
    if arr.ndim == 2:
        return Mat(CSRMatrix.from_dense(arr))
    raise ExpressionError(f"cannot wrap {type(obj).__name__} as a Mat")


def union_all(items: Iterable[object], add: Monoid = PLUS_MONOID) -> MatExpr:
    """A fused n-ary union expression over *items* (left-to-right reduce order)."""
    parts = [as_expr(item) for item in items]
    if not parts:
        raise ExpressionError("union_all needs at least one operand")
    first = parts[0]
    for p in parts[1:]:
        if p.shape != first.shape:
            raise ExpressionError(f"shape mismatch: {first.shape} vs {p.shape}")
    if len(parts) == 1:
        return parts[0]
    return UnionAll(parts, add)


def _accum_callable(accum: object) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    if isinstance(accum, Monoid):
        return accum.op
    if isinstance(accum, BinaryOp):
        return accum
    if callable(accum):
        return accum  # type: ignore[return-value]
    raise ExpressionError(
        f"accumulator must be a BinaryOp, Monoid, or callable, got {type(accum).__name__}"
    )


# --------------------------------------------------------------------------- #
# masked assignment (the GraphBLAS C⟨M⟩ ⊕= Z rule)
# --------------------------------------------------------------------------- #


def apply_assign(
    old: CSRMatrix,
    result: CSRMatrix,
    mask: Mask | None,
    accum: object = None,
    replace: bool = False,
) -> CSRMatrix:
    """Merge *result* into *old* under mask/accumulator/replace semantics.

    The GraphBLAS rule, sparsely: positions the mask allows take the new
    content (``accum(old, new)`` where both exist, otherwise whichever
    exists; without an accumulator the result pattern *replaces* the allowed
    region outright), and positions the mask forbids keep their old entries —
    unless ``replace=True``, which clears them.  Value dtypes promote with
    ``np.result_type`` whenever old and new values can mix.
    """
    if old.shape != result.shape:
        raise ExpressionError(
            f"assignment shape mismatch: {old.shape} vs {result.shape}"
        )
    n_cols = np.int64(old.shape[1])
    ro, co, vo = old.triples()
    rr, cr, vr = result.triples()
    if mask is not None:
        if mask.shape != old.shape:
            raise ExpressionError(f"mask shape {mask.shape} != target shape {old.shape}")
        allowed_old = _mask_keep(ro, co, mask.pattern, mask.complement, old.shape[1])
        # defensively restrict the result to the mask (the planner already
        # evaluates through it, so this is normally a no-op)
        rkeep = _mask_keep(rr, cr, mask.pattern, mask.complement, old.shape[1])
        if not rkeep.all():
            rr, cr, vr = rr[rkeep], cr[rkeep], vr[rkeep]
    else:
        allowed_old = np.ones(ro.size, dtype=bool)

    if accum is None:
        if mask is None:
            # plain (full-mask) assignment: the result replaces the target
            return CSRMatrix.from_triples(rr, cr, vr, old.shape)
        keep = np.zeros(ro.size, dtype=bool) if replace else ~allowed_old
        dtype = np.result_type(vo.dtype, vr.dtype)
        rows = np.concatenate([ro[keep], rr])
        cols = np.concatenate([co[keep], cr])
        vals = np.concatenate([vo[keep].astype(dtype), vr.astype(dtype)])
        return CSRMatrix.from_triples(rows, cols, vals, old.shape)

    fn = _accum_callable(accum)
    dtype = np.result_type(vo.dtype, vr.dtype)
    ko = ro * n_cols + co
    kr = rr * n_cols + cr
    common, io, ir = np.intersect1d(ko, kr, assume_unique=True, return_indices=True)
    acc_vals = np.asarray(fn(vo[io], vr[ir])).astype(dtype, copy=False)
    old_only = np.ones(ko.size, dtype=bool)
    old_only[io] = False
    res_only = np.ones(kr.size, dtype=bool)
    res_only[ir] = False
    # old-only entries survive where allowed (the accumulated Z keeps them)
    # and where disallowed-but-not-replaced (the mask shields them)
    old_keep = old_only & (allowed_old | (not replace))
    rows = np.concatenate([ro[old_keep], common // n_cols, rr[res_only]])
    cols = np.concatenate([co[old_keep], common % n_cols, cr[res_only]])
    vals = np.concatenate(
        [vo[old_keep].astype(dtype), acc_vals, vr[res_only].astype(dtype)]
    )
    return CSRMatrix.from_triples(rows, cols, vals, old.shape)


# --------------------------------------------------------------------------- #
# the mutable containers: Mat and Vec
# --------------------------------------------------------------------------- #


class _MatAssign:
    """The left-hand side of ``C(mask=…, accum=…) << expr``."""

    __slots__ = ("mat", "mask", "accum", "replace")

    def __init__(self, mat: "Mat", mask: Mask | None, accum: object, replace: bool) -> None:
        self.mat = mat
        self.mask = mask
        self.accum = accum
        self.replace = bool(replace)

    def update(self, rhs: object) -> "Mat":
        from repro.assoc import planner

        expr = as_expr(rhs)
        if expr.shape != self.mat.shape:
            raise ExpressionError(
                f"assignment shape mismatch: {self.mat.shape} vs {expr.shape}"
            )
        result = planner.evaluate(expr, self.mask)
        self.mat._csr = apply_assign(
            self.mat._csr, result, self.mask, self.accum, self.replace
        )
        return self.mat

    def __lshift__(self, rhs: object) -> "Mat":
        return self.update(rhs)


class Mat:
    """A mutable matrix container over canonical CSR storage — the lazy
    surface's handle.

    Operations build :class:`MatExpr` trees; ``C(mask=…, accum=…,
    complement=…, replace=…) << expr`` evaluates through the planner and
    assigns in place; plain ``C << expr`` replaces the content outright.
    """

    __slots__ = ("_csr",)

    def __init__(self, csr: CSRMatrix) -> None:
        if not isinstance(csr, CSRMatrix):
            raise ExpressionError(f"Mat wraps a CSRMatrix, got {type(csr).__name__}")
        self._csr = csr

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "Mat":
        return cls(csr)

    @classmethod
    def from_dense(cls, dense: np.ndarray, zero: object = 0) -> "Mat":
        return cls(CSRMatrix.from_dense(dense, zero))

    @property
    def csr(self) -> CSRMatrix:
        return self._csr

    @property
    def shape(self) -> tuple[int, int]:
        return self._csr.shape

    @property
    def nnz(self) -> int:
        return self._csr.nnz

    @property
    def dtype(self) -> np.dtype:
        return self._csr.dtype

    def to_dense(self, zero: object = 0) -> np.ndarray:
        return self._csr.to_dense(zero)

    # -- expression builders (delegate to a leaf of the current storage) -- #

    def _leaf(self) -> MatLeaf:
        return MatLeaf(self._csr)

    def mxm(self, other: object, semiring: Semiring = PLUS_TIMES) -> MxM:
        return self._leaf().mxm(other, semiring)

    def ewise(self, other: object, op: object = PLUS_MONOID, how: str | None = None) -> MatExpr:
        return self._leaf().ewise(other, op, how)

    def transpose(self) -> MatExpr:
        return self._leaf().transpose()

    @property
    def T(self) -> MatExpr:
        return self._leaf().transpose()

    def mxv(self, x: np.ndarray, semiring: Semiring = PLUS_TIMES) -> MxV:
        return self._leaf().mxv(x, semiring)

    def reduce_rows(self, add: Monoid = PLUS_MONOID) -> ReduceRows:
        return self._leaf().reduce_rows(add)

    def reduce_cols(self, add: Monoid = PLUS_MONOID) -> ReduceRows:
        return self._leaf().reduce_cols(add)

    def select(self, mask: object, *, complement: bool = False) -> CSRMatrix:
        """Entries allowed by *mask*, as a new CSR (``C⟨M⟩ = A`` standalone)."""
        return self._leaf().new(mask, complement=complement)

    def __matmul__(self, other: object) -> MxM:
        return self._leaf().__matmul__(other)

    def __add__(self, other: object) -> MatExpr:
        return self._leaf().__add__(other)

    def __mul__(self, other: object) -> MatExpr:
        return self._leaf().__mul__(other)

    # -- assignment ------------------------------------------------------- #

    def __call__(
        self,
        mask: object = None,
        accum: object = None,
        *,
        complement: bool = False,
        replace: bool = False,
    ) -> _MatAssign:
        return _MatAssign(self, as_mask(mask, complement), accum, replace)

    def __lshift__(self, rhs: object) -> "Mat":
        return _MatAssign(self, None, None, False).update(rhs)

    update = __lshift__

    def __repr__(self) -> str:
        return f"Mat(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"


class _VecAssign:
    """The left-hand side of ``w(mask=…, accum=…) << vec_expr``."""

    __slots__ = ("vec", "mask", "complement", "accum", "replace")

    def __init__(
        self, vec: "Vec", mask: object, complement: bool, accum: object, replace: bool
    ) -> None:
        self.vec = vec
        self.mask = mask
        self.complement = bool(complement)
        self.accum = accum
        self.replace = bool(replace)

    def update(self, rhs: VecExpr) -> "Vec":
        from repro.assoc import planner

        if not isinstance(rhs, VecExpr):
            raise ExpressionError(
                f"vector assignment expects a VecExpr, got {type(rhs).__name__}"
            )
        if rhs.size != self.vec.size:
            raise ExpressionError(
                f"assignment length mismatch: {self.vec.size} vs {rhs.size}"
            )
        allow = _as_vec_mask(self.mask, self.complement, self.vec.size)
        result = planner.evaluate_vec(rhs, allow)
        old = self.vec.values
        dtype = np.result_type(old.dtype, result.dtype)
        out = old.astype(dtype, copy=True)
        sel = slice(None) if allow is None else allow
        if self.accum is None:
            out[sel] = result[sel]
        else:
            fn = _accum_callable(self.accum)
            out[sel] = np.asarray(fn(old[sel], result[sel])).astype(dtype, copy=False)
        if self.replace and allow is not None:
            out[~allow] = self.vec.fill
        self.vec.values = out
        return self.vec

    def __lshift__(self, rhs: VecExpr) -> "Vec":
        return self.update(rhs)


class Vec:
    """A mutable dense vector container for masked vector assignment.

    Dense vectors have no "absent entry", so ``replace`` writes *fill*
    (default 0) into the positions the mask forbids.
    """

    __slots__ = ("values", "fill")

    def __init__(self, values: np.ndarray, fill: object = 0) -> None:
        self.values = np.asarray(values)
        if self.values.ndim != 1:
            raise ExpressionError(f"Vec wraps a 1-D array, got {self.values.ndim}-D")
        self.fill = fill

    @property
    def size(self) -> int:
        return int(self.values.size)

    def __call__(
        self,
        mask: object = None,
        accum: object = None,
        *,
        complement: bool = False,
        replace: bool = False,
    ) -> _VecAssign:
        return _VecAssign(self, mask, complement, accum, replace)

    def __lshift__(self, rhs: VecExpr) -> "Vec":
        return _VecAssign(self, None, False, None, False).update(rhs)

    def __repr__(self) -> str:
        return f"Vec(size={self.size}, dtype={self.values.dtype})"
