"""The fusing planner: expression trees → staged, runtime-dispatched kernels.

:func:`evaluate` walks a :class:`~repro.assoc.expr.MatExpr` /
:class:`~repro.assoc.expr.VecExpr` tree and executes it bottom-up, applying
the fusion rules; :func:`plan` performs the same walk without executing and
returns an inspectable :class:`Plan`, so tests (and the masked-mxm benchmark)
can assert *which* kernels an evaluation will run.

Fusion rules:

* **transpose folding** — a transposed leaf resolves against the operand's
  cached transpose (the descriptor path: one rebuild ever); a transpose above
  a compound expression pushes the *mask* through the transposition instead
  (``(Aᵀ)⟨M⟩ = (A⟨Mᵀ⟩)ᵀ``), so the child still evaluates fused;
* **mask pushdown** — masks distribute over element-wise unions and the left
  operand of intersections, so each sub-expression evaluates already-masked;
* **fused masked kernels** — a non-complemented mask on ``mxm`` runs the
  masked ESC kernel (masked-out rows are never expanded; the full product is
  never materialised); masks on unions/intersections filter triples before
  the coalesce sort; a *complemented* mask on ``mxm`` is the one case that
  computes the full product and filters (the complement of a sparse mask
  keeps almost every entry, so there is nothing to skip);
* **union chain collapse** — ``A + B + C`` (same monoid) runs one
  concatenate + coalesce instead of two pairwise unions.

Every dispatch point consults :func:`repro.runtime.config.parallel_config`,
so fused masked kernels run on the same row-blocked executors as the eager
paths — with the same bit-identical serial ≡ parallel guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.assoc import expr as E
from repro.assoc.sparse import (
    CSRMatrix,
    _masked_intersect_serial,
    _masked_mxm_serial,
    _masked_mxv_serial,
    _masked_reduce_rows_serial,
    _union_all_serial,
    masked_select,
)
from repro.errors import ExpressionError
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.runtime.config import parallel_config

__all__ = [
    "Step",
    "StepProfile",
    "Plan",
    "plan",
    "plan_vec",
    "evaluate",
    "evaluate_vec",
]


@dataclass(frozen=True)
class Step:
    """One kernel invocation in a plan."""

    kernel: str
    fused_mask: bool = False
    note: str = ""

    def __str__(self) -> str:
        suffix = "[fused mask]" if self.fused_mask else ""
        return f"{self.kernel}{suffix}"


@dataclass(frozen=True)
class StepProfile:
    """Measured cost of one executed plan step.

    ``wall_ns`` is the step's monotonic wall time; ``nnz`` is the stored-entry
    count of the step's result (``None`` when the result has no sparsity
    notion).  Produced by :meth:`Plan.execute`, rendered by
    :meth:`Plan.explain` with ``profile=True`` — the ground-truth input for
    the ROADMAP's cost-based planner.
    """

    kernel: str
    wall_ns: int
    nnz: int | None = None

    @property
    def wall_ms(self) -> float:
        return self.wall_ns / 1e6


@dataclass(frozen=True)
class Plan:
    """The ordered kernel schedule an evaluation will follow.

    ``expr``/``mask`` carry the tree the plan was built from (excluded from
    equality: two plans with the same kernel schedule compare equal), which
    is what :meth:`typecheck` and :meth:`explain` operate on.
    """

    steps: tuple[Step, ...]
    expr: object | None = field(default=None, compare=False, repr=False)
    mask: object | None = field(default=None, compare=False, repr=False)
    profile: tuple[StepProfile, ...] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def kernels(self) -> tuple[str, ...]:
        return tuple(step.kernel for step in self.steps)

    @property
    def uses_fused_mask(self) -> bool:
        return any(step.fused_mask for step in self.steps)

    @property
    def materializes_unmasked(self) -> bool:
        """True when the plan computes a full result and filters afterwards
        (only the complement-masked ``mxm`` path does)."""
        return "mask_filter" in self.kernels

    def describe(self) -> str:
        return " -> ".join(str(step) for step in self.steps) or "(empty)"

    def typecheck(self):  # noqa: ANN201 - ExprType, imported lazily
        """Statically prove the plan's expression well-shaped before running.

        Returns the inferred :class:`~repro.staticcheck.shapes.ExprType`
        (result shape + dtype); raises
        :class:`~repro.errors.ShapeInferenceError` naming the offending
        subtree for trees the builder methods never validated (raw node
        construction, stale operands, mismatched masks).
        """
        from repro.assoc import expr as E
        from repro.staticcheck import shapes

        if self.expr is None:
            raise ExpressionError(
                "plan carries no expression tree to typecheck (it was built "
                "directly from steps, not by plan()/plan_vec())"
            )
        if isinstance(self.expr, E.VecExpr):
            return shapes.infer_vec(self.expr, self.mask)
        return shapes.infer(self.expr, self.mask)

    def execute(self):  # noqa: ANN201 - CSRMatrix | np.ndarray
        """Run the plan's expression, recording a per-step profile.

        Returns the evaluation result and stores one :class:`StepProfile`
        per plan step (measured wall time plus result nnz) on
        :attr:`profile`, aligned 1:1 with :attr:`steps` — the same walk
        :func:`evaluate` performs, with a stopwatch around each kernel.
        When tracing is live each step additionally opens a ``plan.<kernel>``
        span, so traced runs show the plan tree inside the trace timeline.
        """
        from repro.assoc import expr as E

        if self.expr is None:
            raise ExpressionError(
                "plan carries no expression tree to execute (it was built "
                "directly from steps, not by plan()/plan_vec())"
            )
        _obs.counter("planner.executions").inc()
        rec: list[StepProfile] = []
        if isinstance(self.expr, E.VecExpr):
            result = evaluate_vec(self.expr, self.mask, _rec=rec)
        else:
            result = evaluate(self.expr, self.mask, _rec=rec)
        object.__setattr__(self, "profile", tuple(rec))
        return result

    def explain(self, profile: bool = False) -> str:
        """The kernel schedule plus the typed expression tree — and, for an
        ill-shaped tree, the ``!!``-marked subtree that fails inference.

        With ``profile=True`` (after :meth:`execute`), each step is annotated
        with its measured wall time and result nnz, plus a total line.
        """
        from repro.staticcheck import shapes

        lines = [f"plan: {self.describe()}"]
        if profile:
            if self.profile is None:
                raise ExpressionError(
                    "no recorded profile — call Plan.execute() before "
                    "explain(profile=True)"
                )
            width = max((len(str(step)) for step in self.steps), default=4)
            lines.append("profile:")
            for k, (step, prof) in enumerate(zip(self.steps, self.profile), start=1):
                nnz = f"  nnz={prof.nnz}" if prof.nnz is not None else ""
                lines.append(
                    f"  {k:>2}. {str(step).ljust(width)}  {prof.wall_ms:>9.3f} ms{nnz}"
                )
            total = sum(p.wall_ns for p in self.profile) / 1e6
            lines.append(f"      {'total'.ljust(width)}  {total:>9.3f} ms")
        if self.mask is not None:
            lines.append(f"mask: {self.mask!r}")
        if self.expr is not None:
            lines.append(shapes.annotate(self.expr))
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# runtime-gated dispatch helpers
#
# Each helper asks ``parallel_config(work)`` whether the operation clears the
# work-size floor, then hands the blocked entry point the active config.  The
# blocked layer adds a second, orthogonal gate: on the ``process`` backend,
# operands above ``RuntimeConfig.shm_min_bytes`` travel through shared-memory
# segments (``repro.runtime.shm``) instead of being pickled per block task —
# invisible here, because the shm path runs the same serial kernels over the
# same row partition and so returns bit-identical results.
# --------------------------------------------------------------------------- #


def _dispatch_masked_mxm(
    a: CSRMatrix, b: CSRMatrix, semiring, mask: CSRMatrix  # noqa: ANN001
) -> CSRMatrix:
    if a.shape[1] != b.shape[0]:
        raise ExpressionError(f"inner dimension mismatch: {a.shape} @ {b.shape}")
    work = int(b.row_nnz()[a.indices].sum()) if a.nnz and b.nnz else 0
    cfg = parallel_config(work) if a.shape[0] > 1 else None
    if cfg is not None:
        from repro.assoc.blocked import parallel_masked_mxm

        return parallel_masked_mxm(a, b, semiring, mask, cfg)
    return _masked_mxm_serial(a, b, semiring, mask)


def _dispatch_union_all(
    parts: list[CSRMatrix], add, mask: CSRMatrix | None, complement: bool  # noqa: ANN001
) -> CSRMatrix:
    work = sum(p.nnz for p in parts)
    cfg = parallel_config(work) if parts[0].shape[0] > 1 else None
    if cfg is not None:
        from repro.assoc.blocked import parallel_union_all

        return parallel_union_all(parts, add, mask, complement, cfg)
    return _union_all_serial(parts, add, mask, complement)


def _dispatch_masked_intersect(
    a: CSRMatrix, b: CSRMatrix, mult, mask: CSRMatrix, complement: bool  # noqa: ANN001
) -> CSRMatrix:
    cfg = parallel_config(a.nnz + b.nnz) if a.shape[0] > 1 else None
    if cfg is not None:
        from repro.assoc.blocked import parallel_masked_intersect

        return parallel_masked_intersect(a, b, mult, mask, complement, cfg)
    return _masked_intersect_serial(a, b, mult, mask, complement)


def _dispatch_masked_mxv(
    a: CSRMatrix, x: np.ndarray, semiring, allow: np.ndarray  # noqa: ANN001
) -> np.ndarray:
    cfg = parallel_config(a.nnz) if a.shape[0] > 1 else None
    if cfg is not None:
        from repro.assoc.blocked import parallel_masked_mxv

        return parallel_masked_mxv(a, x, semiring, allow, cfg)
    return _masked_mxv_serial(a, x, semiring, allow)


def _check_mask(mask: E.Mask | None, shape: tuple[int, int]) -> None:
    if mask is not None and mask.shape != shape:
        raise ExpressionError(
            f"mask shape {mask.shape} does not match expression shape {shape}"
        )


# --------------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------------- #


def _result_nnz(result: object) -> int | None:
    """The stored-entry count of a step result (``None`` when meaningless)."""
    nnz = getattr(result, "nnz", None)
    if nnz is not None:
        return int(nnz)
    if isinstance(result, np.ndarray):
        return int(np.count_nonzero(result))
    return None


def _step(rec: "list[StepProfile] | None", kernel: str, thunk):  # noqa: ANN001, ANN201
    """Run one plan step, appending a :class:`StepProfile` when recording.

    The un-profiled path (``rec is None`` — every plain :func:`evaluate`
    call) is a bare ``thunk()``: profiling costs nothing unless
    :meth:`Plan.execute` asked for it.  Step order matches
    :func:`_plan_mat`'s emission order exactly, so the recorded profile
    aligns 1:1 with :attr:`Plan.steps`.
    """
    if rec is None:
        return thunk()
    tracer = _trace.get_tracer()
    t0 = _obs.monotonic_ns()
    with tracer.span(f"plan.{kernel}"):
        out = thunk()
    rec.append(StepProfile(kernel, _obs.monotonic_ns() - t0, _result_nnz(out)))
    return out


def evaluate(
    e: E.MatExpr,
    mask: E.Mask | None = None,
    *,
    _rec: "list[StepProfile] | None" = None,
) -> CSRMatrix:
    """Execute a matrix expression, fusing *mask* into the kernels.

    ``_rec`` (internal, used by :meth:`Plan.execute`) collects one
    :class:`StepProfile` per plan step in :func:`_plan_mat` emission order.
    """
    _check_mask(mask, e.shape)
    if isinstance(e, E.MatLeaf):
        csr = _step(_rec, "leaf", e.resolve)
        if mask is None:
            return csr
        return _step(
            _rec,
            "masked_select",
            lambda: masked_select(csr, mask.pattern, mask.complement),
        )
    if isinstance(e, E.MxM):
        a = evaluate(e.left, None, _rec=_rec)
        b = evaluate(e.right, None, _rec=_rec)
        if mask is None:
            return _step(_rec, "mxm", lambda: a._mxm_dispatch(b, e.semiring))
        if mask.complement:
            full = _step(_rec, "mxm", lambda: a._mxm_dispatch(b, e.semiring))
            return _step(
                _rec, "mask_filter", lambda: masked_select(full, mask.pattern, True)
            )
        return _step(
            _rec,
            "masked_mxm",
            lambda: _dispatch_masked_mxm(a, b, e.semiring, mask.pattern),
        )
    if isinstance(e, E.UnionAll):
        if mask is None:
            parts = [evaluate(p, None, _rec=_rec) for p in e.parts]
            if len(parts) == 1:
                # the 1-way union is a pass-through; still recorded so the
                # profile stays aligned with the planned "union_all" step
                return _step(_rec, "union_all", lambda: parts[0])
            if len(parts) == 2:
                return _step(
                    _rec,
                    "ewise_union",
                    lambda: parts[0]._ewise_union_dispatch(parts[1], e.add),
                )
            return _step(
                _rec, "union_all", lambda: _dispatch_union_all(parts, e.add, None, False)
            )
        # mask pushdown only into compound children (their evaluation fuses
        # it); leaf operands stay unfiltered and the fused union kernel
        # filters their triples inline, pre-sort — no double filtering of
        # leaves, and no intermediate per-leaf selects
        parts = [
            evaluate(p, None, _rec=_rec) if isinstance(p, E.MatLeaf) else evaluate(p, mask, _rec=_rec)
            for p in e.parts
        ]
        if len(parts) == 1:
            return _step(
                _rec,
                "masked_union",
                lambda: masked_select(parts[0], mask.pattern, mask.complement),
            )
        return _step(
            _rec,
            "masked_union",
            lambda: _dispatch_union_all(parts, e.add, mask.pattern, mask.complement),
        )
    if isinstance(e, E.EWiseMult):
        if mask is None:
            a = evaluate(e.left, None, _rec=_rec)
            b = evaluate(e.right, None, _rec=_rec)
            return _step(
                _rec, "ewise_intersect", lambda: a._ewise_intersect_dispatch(b, e.mult)
            )
        # mask pushdown: (A⟨M⟩ ⊗ B) == (A ⊗ B)⟨M⟩.  A leaf left operand is
        # filtered once, inline in the fused kernel; a compound left operand
        # evaluates fused under the mask (the kernel's re-check of its
        # already-restricted triples is the cheaper side of that trade)
        a = (
            evaluate(e.left, None, _rec=_rec)
            if isinstance(e.left, E.MatLeaf)
            else evaluate(e.left, mask, _rec=_rec)
        )
        b = evaluate(e.right, None, _rec=_rec)
        return _step(
            _rec,
            "masked_intersect",
            lambda: _dispatch_masked_intersect(
                a, b, e.mult, mask.pattern, mask.complement
            ),
        )
    if isinstance(e, E.TransposeExpr):
        pushed = None if mask is None else mask.transpose()
        child = evaluate(e.child, pushed, _rec=_rec)
        return _step(_rec, "transpose", child.transpose)
    raise ExpressionError(f"unknown expression node {type(e).__name__}")


def evaluate_vec(
    v: E.VecExpr,
    allow: np.ndarray | None = None,
    *,
    _rec: "list[StepProfile] | None" = None,
) -> np.ndarray:
    """Execute a vector expression; *allow* is a dense boolean row mask with
    any complement already applied."""
    if isinstance(v, E.MxV):
        a = evaluate(v.mat, None, _rec=_rec)
        if allow is None:
            return _step(_rec, "mxv", lambda: a._mxv_dispatch(v.x, v.semiring))
        return _step(
            _rec,
            "masked_mxv",
            lambda: _dispatch_masked_mxv(a, v.x, v.semiring, allow),
        )
    if isinstance(v, E.ReduceRows):
        a = evaluate(v.mat, None, _rec=_rec)
        if allow is None:
            return _step(_rec, "reduce_rows", lambda: a.reduce_rows(v.add))
        return _step(
            _rec,
            "masked_reduce_rows",
            lambda: _masked_reduce_rows_serial(a, v.add, allow),
        )
    raise ExpressionError(f"unknown vector expression node {type(v).__name__}")


# --------------------------------------------------------------------------- #
# static planning (same walk, no execution)
# --------------------------------------------------------------------------- #


def plan(e: E.MatExpr, mask: E.Mask | None = None) -> Plan:
    """The kernel schedule :func:`evaluate` would follow for this tree."""
    steps: list[Step] = []
    _plan_mat(e, mask, steps)
    return Plan(tuple(steps), expr=e, mask=mask)


def plan_vec(v: E.VecExpr, allow: np.ndarray | None = None) -> Plan:
    steps: list[Step] = []
    if isinstance(v, E.MxV):
        _plan_mat(v.mat, None, steps)
        if allow is None:
            steps.append(Step("mxv"))
        else:
            steps.append(Step("masked_mxv", fused_mask=True, note="masked rows skipped"))
    elif isinstance(v, E.ReduceRows):
        _plan_mat(v.mat, None, steps)
        if allow is None:
            steps.append(Step("reduce_rows"))
        else:
            steps.append(Step("masked_reduce_rows", fused_mask=True))
    else:
        raise ExpressionError(f"unknown vector expression node {type(v).__name__}")
    return Plan(tuple(steps), expr=v, mask=allow)


def _plan_mat(e: E.MatExpr, mask: E.Mask | None, steps: list[Step]) -> None:
    _check_mask(mask, e.shape)
    if isinstance(e, E.MatLeaf):
        note = "transposed (cached descriptor)" if e.transposed else ""
        steps.append(Step("leaf", note=note))
        if mask is not None:
            steps.append(Step("masked_select", fused_mask=True))
        return
    if isinstance(e, E.MxM):
        _plan_mat(e.left, None, steps)
        _plan_mat(e.right, None, steps)
        if mask is None:
            steps.append(Step("mxm"))
        elif mask.complement:
            steps.append(Step("mxm"))
            steps.append(
                Step("mask_filter", note="complement mask: full product then filter")
            )
        else:
            steps.append(
                Step("masked_mxm", fused_mask=True, note="masked rows never expanded")
            )
        return
    if isinstance(e, E.UnionAll):
        for p in e.parts:
            child_mask = None if (mask is None or isinstance(p, E.MatLeaf)) else mask
            _plan_mat(p, child_mask, steps)
        if mask is None and len(e.parts) == 2:
            steps.append(Step("ewise_union"))
        elif mask is None:
            steps.append(Step("union_all", note=f"{len(e.parts)}-way fused"))
        else:
            steps.append(
                Step(
                    "masked_union",
                    fused_mask=True,
                    note=f"{len(e.parts)}-way fused, triples filtered pre-sort",
                )
            )
        return
    if isinstance(e, E.EWiseMult):
        if mask is None:
            _plan_mat(e.left, None, steps)
            _plan_mat(e.right, None, steps)
            steps.append(Step("ewise_intersect"))
        else:
            left_mask = None if isinstance(e.left, E.MatLeaf) else mask
            _plan_mat(e.left, left_mask, steps)
            _plan_mat(e.right, None, steps)
            steps.append(Step("masked_intersect", fused_mask=True, note="mask pushed to left operand"))
        return
    if isinstance(e, E.TransposeExpr):
        pushed = None if mask is None else mask.transpose()
        _plan_mat(e.child, pushed, steps)
        steps.append(Step("transpose", note="mask pushed through transpose" if mask else ""))
        return
    raise ExpressionError(f"unknown expression node {type(e).__name__}")
