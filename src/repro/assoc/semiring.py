"""Semirings: the algebraic heart of the GraphBLAS-style substrate.

The paper's lineage (refs [1]-[19]) analyses traffic matrices with GraphBLAS
semiring operations.  A semiring here is an *additive monoid* (a commutative,
associative NumPy ufunc with an identity) paired with a *multiplicative binary
operator*.  All kernels in :mod:`repro.assoc.sparse` are generic over a
:class:`Semiring`, and all reductions are generic over a :class:`Monoid`, so
``A @ B`` over ``min.plus`` (shortest paths) costs the same code path as
``plus.times`` (packet counting).

Everything is ufunc-backed, so the sparse kernels stay fully vectorized: the
hot loops are ``ufunc.reduceat`` / fancy indexing, never Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SemiringError

__all__ = [
    "BinaryOp",
    "Monoid",
    "Semiring",
    "PLUS",
    "TIMES",
    "MIN",
    "MAX",
    "LOR",
    "LAND",
    "FIRST",
    "SECOND",
    "PAIR",
    "PLUS_TIMES",
    "PLUS_MIN",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "MAX_MIN",
    "LOR_LAND",
    "PLUS_PAIR",
    "MIN_FIRST",
    "MIN_SECOND",
    "semiring_by_name",
    "SEMIRINGS",
    "monoid_by_name",
    "MONOIDS",
]


@dataclass(frozen=True)
class BinaryOp:
    """A named, vectorized binary operator ``f(x, y) -> z``.

    ``func`` must accept two equal-length NumPy arrays and return one.  When it
    is a genuine :class:`numpy.ufunc` the sparse kernels can also use its
    ``reduceat`` — recorded by :attr:`is_ufunc`.
    """

    name: str
    func: Callable[[np.ndarray, np.ndarray], np.ndarray]

    @property
    def is_ufunc(self) -> bool:
        return isinstance(self.func, np.ufunc)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.func(x, y)


@dataclass(frozen=True)
class Monoid:
    """A commutative, associative :class:`BinaryOp` with an identity element.

    The identity is expressed as a function of dtype because it differs by
    type: the ``MIN`` monoid's identity is ``+inf`` for floats but
    ``iinfo.max`` for integers.
    """

    op: BinaryOp
    identity_for: Callable[[np.dtype], object]

    @property
    def name(self) -> str:
        return self.op.name

    def identity(self, dtype: np.dtype | type) -> object:
        return self.identity_for(np.dtype(dtype))

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.op(x, y)

    def reduceat(self, data: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segment reduction ``out[k] = reduce(data[starts[k]:starts[k+1]])``.

        Handles the NumPy ``reduceat`` quirk for *empty* segments (where
        ``starts[k] == starts[k+1]``, reduceat returns ``data[starts[k]]``
        instead of the identity) by patching them afterwards.  ``starts`` is
        the leading ``n`` entries of an ``n+1``-long indptr array.
        """
        if not self.op.is_ufunc:
            raise SemiringError(f"monoid {self.name!r} is not ufunc-backed; cannot reduceat")
        indptr = starts
        seg_starts = indptr[:-1]
        n_seg = seg_starts.size
        out = np.full(n_seg, self.identity(data.dtype), dtype=data.dtype)
        if data.size == 0 or n_seg == 0:
            return out
        # Run reduceat only over non-empty segments: consecutive non-empty
        # starts are exactly each other's segment ends (empty segments in
        # between share the same offset), so the reduction extents are right
        # and no start can equal len(data).
        nonempty = indptr[1:] > seg_starts
        if nonempty.any():
            out[nonempty] = self.op.func.reduceat(data, seg_starts[nonempty])  # type: ignore[union-attr]
        return out


def _zero(dtype: np.dtype) -> object:
    if dtype == np.bool_:
        return False
    return dtype.type(0)


def _one(dtype: np.dtype) -> object:
    if dtype == np.bool_:
        return True
    return dtype.type(1)


def _max_value(dtype: np.dtype) -> object:
    if dtype == np.bool_:
        return True
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).max
    return dtype.type(np.inf)


def _min_value(dtype: np.dtype) -> object:
    if dtype == np.bool_:
        return False
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    return dtype.type(-np.inf)


# Non-ufunc operators are module-level functions (not lambdas) so every
# built-in Monoid/Semiring pickles — the runtime's process backend ships them
# to workers.


def _first(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return x


def _second(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y


def _pair(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones(np.broadcast(x, y).shape, dtype=np.result_type(x, y))


def _false(dtype: np.dtype) -> object:
    return False


def _true(dtype: np.dtype) -> object:
    return True


PLUS = BinaryOp("plus", np.add)
TIMES = BinaryOp("times", np.multiply)
MIN = BinaryOp("min", np.minimum)
MAX = BinaryOp("max", np.maximum)
LOR = BinaryOp("lor", np.logical_or)
LAND = BinaryOp("land", np.logical_and)
FIRST = BinaryOp("first", _first)
SECOND = BinaryOp("second", _second)
PAIR = BinaryOp("pair", _pair)

PLUS_MONOID = Monoid(PLUS, _zero)
MIN_MONOID = Monoid(MIN, _max_value)
MAX_MONOID = Monoid(MAX, _min_value)
LOR_MONOID = Monoid(LOR, _false)
LAND_MONOID = Monoid(LAND, _true)
TIMES_MONOID = Monoid(TIMES, _one)


@dataclass(frozen=True)
class Semiring:
    """An additive :class:`Monoid` paired with a multiplicative :class:`BinaryOp`.

    Named ``add.mult`` by GraphBLAS convention: ``plus.times`` is ordinary
    linear algebra, ``min.plus`` is shortest paths, ``lor.land`` is
    reachability, ``plus.pair`` counts intersections (triangle counting).
    """

    add: Monoid
    mult: BinaryOp

    @property
    def name(self) -> str:
        return f"{self.add.name}.{self.mult.name}"

    def zero(self, dtype: np.dtype | type) -> object:
        """The annihilating element stored implicitly by sparsity."""
        return self.add.identity(dtype)

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


PLUS_TIMES = Semiring(PLUS_MONOID, TIMES)
PLUS_MIN = Semiring(PLUS_MONOID, MIN)
MIN_PLUS = Semiring(MIN_MONOID, PLUS)
MAX_PLUS = Semiring(MAX_MONOID, PLUS)
MAX_TIMES = Semiring(MAX_MONOID, TIMES)
MAX_MIN = Semiring(MAX_MONOID, MIN)
LOR_LAND = Semiring(LOR_MONOID, LAND)
PLUS_PAIR = Semiring(PLUS_MONOID, PAIR)
MIN_FIRST = Semiring(MIN_MONOID, FIRST)
MIN_SECOND = Semiring(MIN_MONOID, SECOND)

#: Registry of all built-in semirings by GraphBLAS-style name.
SEMIRINGS: dict[str, Semiring] = {
    s.name: s
    for s in (
        PLUS_TIMES,
        PLUS_MIN,
        MIN_PLUS,
        MAX_PLUS,
        MAX_TIMES,
        MAX_MIN,
        LOR_LAND,
        PLUS_PAIR,
        MIN_FIRST,
        MIN_SECOND,
    )
}


def semiring_by_name(name: str) -> Semiring:
    """Look up a built-in semiring, e.g. ``semiring_by_name("min.plus")``."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise SemiringError(
            f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}"
        ) from None


#: Registry of all built-in monoids by operator name.
MONOIDS: dict[str, Monoid] = {
    m.name: m
    for m in (
        PLUS_MONOID,
        MIN_MONOID,
        MAX_MONOID,
        LOR_MONOID,
        LAND_MONOID,
        TIMES_MONOID,
    )
}


def monoid_by_name(name: str) -> Monoid:
    """Look up a built-in monoid, e.g. ``monoid_by_name("min")``."""
    try:
        return MONOIDS[name]
    except KeyError:
        raise SemiringError(
            f"unknown monoid {name!r}; available: {sorted(MONOIDS)}"
        ) from None
