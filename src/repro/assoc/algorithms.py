"""Graph algorithms in the language of linear algebra (refs [1], [5]-[8]).

The paper's opening claim — traffic matrices are "a powerful tool for
understanding and analyzing networks", made more powerful by GraphBLAS —
gets exercised here: the classic semiring formulations of BFS, shortest
paths, connected components, triangle counting and PageRank, all running on
the package's own :class:`~repro.assoc.sparse.CSRMatrix` kernels.  Each is
cross-checked against networkx in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.assoc.semiring import LOR_LAND, MIN_PLUS, PLUS_PAIR, PLUS_TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import SparseFormatError

__all__ = [
    "bfs_levels",
    "shortest_path_lengths",
    "connected_components",
    "triangle_count",
    "pagerank",
    "reachability_matrix",
]


def _check_square(adj: CSRMatrix) -> int:
    if adj.shape[0] != adj.shape[1]:
        raise SparseFormatError(f"adjacency matrix must be square, got {adj.shape}")
    return adj.shape[0]


def bfs_levels(adj: CSRMatrix, source: int) -> np.ndarray:
    """Breadth-first levels from *source* via repeated ``lor.land`` vxm.

    Returns an int array: level of each vertex (``-1`` unreachable, 0 at the
    source).  Each sweep is one vector-matrix product over the boolean
    semiring — the canonical GraphBLAS BFS.
    """
    n = _check_square(adj)
    if not 0 <= source < n:
        raise SparseFormatError(f"source {source} outside 0..{n - 1}")
    bool_adj = CSRMatrix(
        adj.shape, adj.indptr, adj.indices, adj.data != 0, _trusted=True
    )
    levels = np.full(n, -1, dtype=np.int64)
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    levels[source] = 0
    level = 0
    while frontier.any():
        level += 1
        reached = bool_adj.vxm(frontier, LOR_LAND)
        frontier = reached & (levels < 0)
        levels[frontier] = level
    return levels


def shortest_path_lengths(adj: CSRMatrix, source: int) -> np.ndarray:
    """Single-source weighted distances via ``min.plus`` relaxation sweeps.

    Bellman-Ford in matrix form: at most ``n - 1`` vxm sweeps over the
    tropical semiring.  Edge weights are the stored values (must be
    non-negative for the distances to be meaningful); unreachable vertices
    get ``inf``.
    """
    n = _check_square(adj)
    if not 0 <= source < n:
        raise SparseFormatError(f"source {source} outside 0..{n - 1}")
    if adj.data.size and adj.data.min() < 0:
        raise SparseFormatError("shortest_path_lengths expects non-negative weights")
    weights = CSRMatrix(
        adj.shape, adj.indptr, adj.indices, adj.data.astype(np.float64), _trusted=True
    )
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    for _ in range(n - 1):
        relaxed = np.minimum(dist, weights.vxm(dist, MIN_PLUS))
        if np.array_equal(relaxed, dist, equal_nan=True):
            break
        dist = relaxed
    return dist


def connected_components(adj: CSRMatrix) -> np.ndarray:
    """Weakly-connected component labels via label propagation.

    Each vertex repeatedly adopts the minimum label among itself and its
    (undirected) neighbours — a ``min.first``-flavoured iteration expressed
    with min over a vxm.  Labels are the minimum vertex index per component.
    """
    n = _check_square(adj)
    undirected = adj.ewise_union(adj.transpose())
    bool_adj = CSRMatrix(
        undirected.shape,
        undirected.indptr,
        undirected.indices,
        np.ones(undirected.nnz, dtype=np.float64),
        _trusted=True,
    )
    labels = np.arange(n, dtype=np.float64)
    while True:
        # neighbour minimum via min.plus with zero edge weights would need 0s;
        # use min over gathered neighbour labels: min.plus with weight 0 edges
        zero_weight = CSRMatrix(
            bool_adj.shape,
            bool_adj.indptr,
            bool_adj.indices,
            np.zeros(bool_adj.nnz, dtype=np.float64),
            _trusted=True,
        )
        neighbour_min = zero_weight.vxm(labels, MIN_PLUS)
        new_labels = np.minimum(labels, neighbour_min)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels.astype(np.int64)


def triangle_count(adj: CSRMatrix) -> int:
    """Global triangle count via the ``plus.pair`` masked product.

    Symmetrises the pattern, computes ``C = (A @ A) .* A`` over ``plus.pair``
    and sums — each triangle is counted 6 times (3 vertices × 2 directions).
    """
    undirected = adj.ewise_union(adj.transpose())
    pattern = CSRMatrix(
        undirected.shape,
        undirected.indptr,
        undirected.indices,
        np.ones(undirected.nnz, dtype=np.int64),
        _trusted=True,
    )
    # drop self loops: they are not triangle edges
    r, c, v = pattern.triples()
    keep = r != c
    pattern = CSRMatrix.from_triples(r[keep], c[keep], v[keep], pattern.shape)
    paths = pattern.mxm(pattern, PLUS_PAIR)
    wedges_on_edges = paths.ewise_intersect(pattern, PLUS_TIMES.mult)
    return int(wedges_on_edges.reduce_scalar()) // 6


def pagerank(
    adj: CSRMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank by power iteration over ``plus.times`` vxm.

    Dangling vertices redistribute uniformly (the standard fix).  Returns a
    probability vector summing to 1.
    """
    n = _check_square(adj)
    if n == 0:
        return np.zeros(0)
    out_deg = adj.reduce_rows().astype(np.float64)
    inv_deg = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1e-300), 0.0)
    # row-normalised transition matrix: scale each row's values
    row_of = np.repeat(np.arange(n), adj.row_nnz())
    transition = CSRMatrix(
        adj.shape,
        adj.indptr,
        adj.indices,
        adj.data.astype(np.float64) * inv_deg[row_of],
        _trusted=True,
    )
    rank = np.full(n, 1.0 / n)
    dangling = out_deg == 0
    for _ in range(max_iter):
        spread = transition.vxm(rank, PLUS_TIMES)
        spread = spread + rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * spread
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank / rank.sum()


def reachability_matrix(adj: CSRMatrix) -> CSRMatrix:
    """Transitive closure over ``lor.land`` by repeated squaring.

    ``R[i, j]`` true iff a directed path of length ≥ 1 runs from i to j.
    """
    n = _check_square(adj)
    current = CSRMatrix(adj.shape, adj.indptr, adj.indices, adj.data != 0, _trusted=True)
    reach = current
    hops = 1
    while hops < n:
        expanded = reach.ewise_union(reach.mxm(current, LOR_LAND), LOR_LAND.add)
        if expanded == reach:
            break
        reach = expanded
        hops += 1
    return reach
