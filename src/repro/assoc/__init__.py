"""GraphBLAS-style substrate: semirings, sparse kernels, associative arrays."""

from repro.assoc.algorithms import (
    bfs_levels,
    connected_components,
    pagerank,
    reachability_matrix,
    shortest_path_lengths,
    triangle_count,
)
from repro.assoc.array import AssociativeArray
from repro.assoc.blocked import BlockedCSR
from repro.assoc.semiring import (
    LOR_LAND,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_FIRST,
    MIN_PLUS,
    MIN_SECOND,
    MONOIDS,
    PLUS_MIN,
    PLUS_PAIR,
    PLUS_TIMES,
    SEMIRINGS,
    BinaryOp,
    Monoid,
    Semiring,
    monoid_by_name,
    semiring_by_name,
)
from repro.assoc.sparse import CSRMatrix, coalesce

__all__ = [
    "AssociativeArray",
    "BlockedCSR",
    "bfs_levels",
    "shortest_path_lengths",
    "connected_components",
    "triangle_count",
    "pagerank",
    "reachability_matrix",
    "CSRMatrix",
    "coalesce",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "semiring_by_name",
    "SEMIRINGS",
    "monoid_by_name",
    "MONOIDS",
    "PLUS_TIMES",
    "PLUS_MIN",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "MAX_MIN",
    "LOR_LAND",
    "PLUS_PAIR",
    "MIN_FIRST",
    "MIN_SECOND",
]
