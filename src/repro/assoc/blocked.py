"""Row-blocked CSR tiling and the parallel entry points for every kernel.

A :class:`BlockedCSR` is a :class:`~repro.assoc.sparse.CSRMatrix` cut into
contiguous row blocks, each itself a small CSR matrix over the full column
range.  Row blocking is the natural decomposition for the ESC semiring GEMM:
``C[i, :]`` depends only on ``A[i, :]`` and all of ``B``, so every block
multiplies independently and results concatenate row-wise with no reduction
step.  The same tiling parallelises ``mxv``, the element-wise ops and
``coalesce``.

**Bit-identical results.**  The serial kernels stable-sort expansion terms by
``row * n_cols + col`` and combine duplicates with ``reduceat``.  Row blocks
partition that key space into disjoint, ordered ranges while preserving the
relative order of terms inside each range, so per-block outputs concatenate
into exactly the serial output — including float rounding, because every
duplicate group is reduced in the same order.  The benchmark and property
tests assert this equality rather than assuming it.

The ``parallel_*`` functions here are the dispatch targets used by
:mod:`repro.assoc.sparse` when :func:`repro.runtime.configure` enables
workers; they can also be called directly with an explicit config.

**Zero-copy process dispatch.**  On the ``process`` backend, every entry
point checks :meth:`~repro.runtime.config.RuntimeConfig.use_shm` against the
total operand bytes: above the threshold, operands are exported **once** into
:mod:`multiprocessing.shared_memory` segments (:mod:`repro.runtime.shm`) and
each task ships only ``(segment refs, block range)``; workers attach and run
the *same serial kernels* on the same row partition, so the per-block outputs
— and therefore the assembled result — are bit-identical to the pickle path.
Small operands keep the pickle path, where per-task copies are cheaper than
the segment round trip.
"""

from __future__ import annotations

import numpy as np

from contextlib import contextmanager
from typing import Iterator

from repro.assoc import sparse as _sparse
from repro.assoc.semiring import Monoid, PLUS_TIMES, Semiring
from repro.assoc.sparse import CSRMatrix
from repro.errors import SparseFormatError
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.runtime import shm as _shm
from repro.runtime.config import RuntimeConfig, get_config
from repro.runtime.executor import choose_block_rows, get_executor

__all__ = [
    "BlockedCSR",
    "parallel_mxm",
    "parallel_mxv",
    "parallel_ewise_union",
    "parallel_ewise_intersect",
    "parallel_coalesce",
    "parallel_masked_mxm",
    "parallel_masked_mxv",
    "parallel_masked_intersect",
    "parallel_union_all",
]


def _slice_rows(csr: CSRMatrix, r0: int, r1: int) -> CSRMatrix:
    """The ``[r0:r1)`` row block of *csr* as a standalone CSR (zero-copy views)."""
    lo = int(csr.indptr[r0])
    hi = int(csr.indptr[r1])
    return CSRMatrix(
        (r1 - r0, csr.shape[1]),
        csr.indptr[r0 : r1 + 1] - lo,
        csr.indices[lo:hi],
        csr.data[lo:hi],
        _trusted=True,
    )


def _row_starts(n_rows: int, block_rows: int) -> np.ndarray:
    """Block boundary rows ``[0, k, 2k, ..., n_rows]`` (always >= 1 block)."""
    if n_rows <= 0:
        return np.asarray([0, 0], dtype=np.int64)
    starts = np.arange(0, n_rows, block_rows, dtype=np.int64)
    return np.append(starts, n_rows)


@contextmanager
def _kernel_obs(
    name: str, cfg: RuntimeConfig, nnz_in: int
) -> "Iterator[_trace.Span | _trace.NullSpan]":
    """Metrics + span scope around one blocked-kernel call.

    Counts the call (``kernels.<name>``), times it into the shared
    ``kernels.wall_ms`` histogram, and — when tracing is live — opens a
    ``kernel.<name>`` span carrying backend, worker count, and nnz in;
    callers add ``blocks``/``nnz_out`` via ``span.set(...)`` once known.
    Module-level and patchable on purpose: ``benchmarks/bench_obs_overhead.py``
    swaps it for a transparent no-op to price the instrumentation itself.
    """
    _obs.counter(f"kernels.{name}").inc()
    tracer = _trace.get_tracer()
    t0 = _obs.monotonic_ns()
    with tracer.span(
        f"kernel.{name}",
        backend=cfg.resolved_backend(),
        workers=cfg.workers,
        nnz_in=nnz_in,
    ) as span:
        yield span
    _obs.histogram("kernels.wall_ms").observe((_obs.monotonic_ns() - t0) / 1e6)


class BlockedCSR:
    """A CSR matrix tiled into contiguous row blocks.

    Blocks are plain :class:`CSRMatrix` instances sharing the parent's column
    range, so every serial kernel runs on a block unchanged — the engine adds
    scheduling, not new math.
    """

    __slots__ = ("shape", "row_starts", "blocks")

    def __init__(
        self,
        shape: tuple[int, int],
        row_starts: np.ndarray,
        blocks: list[CSRMatrix],
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.row_starts = np.asarray(row_starts, dtype=np.int64)
        self.blocks = list(blocks)
        if self.row_starts.ndim != 1 or self.row_starts.size != len(self.blocks) + 1:
            raise SparseFormatError(
                f"row_starts needs n_blocks+1 entries, got {self.row_starts.size} "
                f"for {len(self.blocks)} blocks"
            )
        if self.row_starts[0] != 0 or self.row_starts[-1] != self.shape[0]:
            raise SparseFormatError("row_starts must span [0, n_rows]")
        if np.any(np.diff(self.row_starts) < 0):
            raise SparseFormatError("row_starts must be non-decreasing")
        for k, blk in enumerate(self.blocks):
            span = int(self.row_starts[k + 1] - self.row_starts[k])
            if blk.shape != (span, self.shape[1]):
                raise SparseFormatError(
                    f"block {k} has shape {blk.shape}, expected {(span, self.shape[1])}"
                )

    # ------------------------------------------------------------------ #
    # construction / reassembly
    # ------------------------------------------------------------------ #

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block_rows: int | None = None) -> "BlockedCSR":
        """Tile *csr* into blocks of *block_rows* rows (heuristic when None).

        A ``block_rows`` larger than the matrix yields a single block — the
        degenerate tiling is valid and equivalent to the serial layout.
        """
        if block_rows is None:
            cfg = get_config()
            block_rows = choose_block_rows(
                csr.shape[0], csr.nnz, cfg.workers, cfg.block_rows
            )
        if block_rows < 1:
            raise SparseFormatError(f"block_rows must be >= 1, got {block_rows}")
        starts = _row_starts(csr.shape[0], int(block_rows))
        blocks = [
            _slice_rows(csr, int(r0), int(r1))
            for r0, r1 in zip(starts[:-1], starts[1:])
        ]
        return cls(csr.shape, starts, blocks)

    def to_csr(self) -> CSRMatrix:
        """Reassemble the blocks into one canonical :class:`CSRMatrix`."""
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        offset = 0
        for k, blk in enumerate(self.blocks):
            r0 = int(self.row_starts[k])
            r1 = int(self.row_starts[k + 1])
            indptr[r0 + 1 : r1 + 1] = blk.indptr[1:] + offset
            offset += blk.nnz
        if self.blocks:
            indices = np.concatenate([b.indices for b in self.blocks])
            data = np.concatenate([b.data for b in self.blocks])
        else:  # zero-row matrix
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.int64)
        return CSRMatrix(self.shape, indptr, indices, data, _trusted=True)

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    def block(self, k: int) -> CSRMatrix:
        """The *k*-th row block."""
        return self.blocks[k]

    def block_spans(self) -> list[tuple[int, int]]:
        """``(row_start, row_end)`` of every block."""
        return [
            (int(r0), int(r1))
            for r0, r1 in zip(self.row_starts[:-1], self.row_starts[1:])
        ]

    def __repr__(self) -> str:
        return (
            f"BlockedCSR(shape={self.shape}, n_blocks={self.n_blocks}, nnz={self.nnz})"
        )

    # ------------------------------------------------------------------ #
    # blocked kernels
    # ------------------------------------------------------------------ #

    def mxm(
        self,
        other: CSRMatrix,
        semiring: Semiring = PLUS_TIMES,
        config: RuntimeConfig | None = None,
    ) -> "BlockedCSR":
        """Blocked semiring product ``C = A @ B``; blocks keep their tiling."""
        if self.shape[1] != other.shape[0]:
            raise SparseFormatError(
                f"inner dimension mismatch: {self.shape} @ {other.shape}"
            )
        cfg = get_config() if config is None else config
        with _kernel_obs("blocked_mxm", cfg, self.nnz + other.nnz) as span:
            span.set(blocks=self.n_blocks)
            parts = get_executor(cfg).map(
                _mxm_task,
                [(blk, other, semiring) for blk in self.blocks],
                label=f"mxm ({self.n_blocks} blocks)",
            )
            out_dtype = _mult_dtype(semiring.mult, self.blocks, other)
            parts = [_cast_data(p, out_dtype) for p in parts]
            out = BlockedCSR((self.shape[0], other.shape[1]), self.row_starts, parts)
            span.set(nnz_out=out.nnz)
            return out

    def mxv(
        self,
        x: np.ndarray,
        semiring: Semiring = PLUS_TIMES,
        config: RuntimeConfig | None = None,
    ) -> np.ndarray:
        """Blocked matrix-vector product (dense input and output)."""
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise SparseFormatError(f"vector length {x.shape} != {(self.shape[1],)}")
        cfg = get_config() if config is None else config
        with _kernel_obs("blocked_mxv", cfg, self.nnz) as span:
            span.set(blocks=self.n_blocks)
            parts = get_executor(cfg).map(
                _mxv_task,
                [(blk, x, semiring) for blk in self.blocks],
                label=f"mxv ({self.n_blocks} blocks)",
            )
            out = np.concatenate(parts) if parts else np.empty(0)
            if span is not _trace.NULL_SPAN:  # count_nonzero is O(n); trace-only
                span.set(nnz_out=int(np.count_nonzero(out)))
            return out


# ---------------------------------------------------------------------- #
# executor task payloads (module-level so the process backend can pickle)
# ---------------------------------------------------------------------- #


def _mxm_task(args: tuple[CSRMatrix, CSRMatrix, Semiring]) -> CSRMatrix:
    a_block, b, semiring = args
    return a_block._mxm_serial(b, semiring)


def _mxv_task(args: tuple[CSRMatrix, np.ndarray, Semiring]) -> np.ndarray:
    block, x, semiring = args
    return block._mxv_serial(x, semiring)


def _ewise_union_task(args: tuple[CSRMatrix, CSRMatrix, Monoid]) -> CSRMatrix:
    a_block, b_block, add = args
    return a_block._ewise_union_serial(b_block, add)


def _ewise_intersect_task(args) -> CSRMatrix:  # noqa: ANN001 - mult is any callable
    a_block, b_block, mult = args
    return a_block._ewise_intersect_serial(b_block, mult)


def _coalesce_task(args: tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int], Monoid]):
    rows, cols, vals, shape, add = args
    return _sparse._coalesce_core(rows, cols, vals, shape, add)


def _masked_mxm_task(args) -> CSRMatrix:  # noqa: ANN001
    a_block, b, semiring, mask_block, out_dtype = args
    return _sparse._masked_mxm_serial(a_block, b, semiring, mask_block, out_dtype)


def _masked_mxv_task(args) -> np.ndarray:  # noqa: ANN001
    a_block, x, semiring, allow_block = args
    return _sparse._masked_mxv_serial(a_block, x, semiring, allow_block)


def _masked_intersect_task(args) -> CSRMatrix:  # noqa: ANN001
    a_block, b_block, mult, mask_block, complement = args
    return _sparse._masked_intersect_serial(a_block, b_block, mult, mask_block, complement)


def _union_all_task(args) -> CSRMatrix:  # noqa: ANN001
    part_blocks, add, mask_block, complement = args
    return _sparse._union_all_serial(part_blocks, add, mask_block, complement)


# ---------------------------------------------------------------------- #
# shared-memory task payloads (process backend above the byte threshold)
#
# Payloads carry only segment refs plus the block's ``[r0, r1)`` row range;
# the worker attaches (cached per process, see repro.runtime.shm), slices its
# rows zero-copy with the same ``_slice_rows`` the parent-side tiling uses,
# and runs the identical serial kernel — so each block's output matches the
# pickle path bit-for-bit and assembly is unchanged.
# ---------------------------------------------------------------------- #


def _shm_mxm_task(args) -> CSRMatrix:  # noqa: ANN001
    a_ref, b_ref, r0, r1, semiring = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    return a_block._mxm_serial(_shm.attach_csr(b_ref), semiring)


def _shm_mxv_task(args) -> np.ndarray:  # noqa: ANN001
    a_ref, x_ref, r0, r1, semiring = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    return a_block._mxv_serial(_shm.attach_array(x_ref), semiring)


def _shm_ewise_union_task(args) -> CSRMatrix:  # noqa: ANN001
    a_ref, b_ref, r0, r1, add = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    b_block = _slice_rows(_shm.attach_csr(b_ref), r0, r1)
    return a_block._ewise_union_serial(b_block, add)


def _shm_ewise_intersect_task(args) -> CSRMatrix:  # noqa: ANN001
    a_ref, b_ref, r0, r1, mult = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    b_block = _slice_rows(_shm.attach_csr(b_ref), r0, r1)
    return a_block._ewise_intersect_serial(b_block, mult)


def _shm_coalesce_task(args):  # noqa: ANN001
    r_ref, c_ref, v_ref, lo, hi, shape, add = args
    rows = _shm.attach_array(r_ref)[lo:hi]
    cols = _shm.attach_array(c_ref)[lo:hi]
    vals = _shm.attach_array(v_ref)[lo:hi]
    return _sparse._coalesce_core(rows, cols, vals, shape, add)


def _shm_masked_mxm_task(args) -> CSRMatrix:  # noqa: ANN001
    a_ref, b_ref, mask_ref, r0, r1, semiring, out_dtype = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    mask_block = _slice_rows(_shm.attach_csr(mask_ref), r0, r1)
    return _sparse._masked_mxm_serial(
        a_block, _shm.attach_csr(b_ref), semiring, mask_block, out_dtype
    )


def _shm_masked_mxv_task(args) -> np.ndarray:  # noqa: ANN001
    a_ref, x_ref, allow_ref, r0, r1, semiring = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    allow_block = _shm.attach_array(allow_ref)[r0:r1]
    return _sparse._masked_mxv_serial(a_block, _shm.attach_array(x_ref), semiring, allow_block)


def _shm_masked_intersect_task(args) -> CSRMatrix:  # noqa: ANN001
    a_ref, b_ref, mask_ref, r0, r1, mult, complement = args
    a_block = _slice_rows(_shm.attach_csr(a_ref), r0, r1)
    b_block = _slice_rows(_shm.attach_csr(b_ref), r0, r1)
    mask_block = _slice_rows(_shm.attach_csr(mask_ref), r0, r1)
    return _sparse._masked_intersect_serial(a_block, b_block, mult, mask_block, complement)


def _shm_union_all_task(args) -> CSRMatrix:  # noqa: ANN001
    part_refs, add, mask_ref, complement, r0, r1 = args
    part_blocks = [_slice_rows(_shm.attach_csr(ref), r0, r1) for ref in part_refs]
    mask_block = None if mask_ref is None else _slice_rows(_shm.attach_csr(mask_ref), r0, r1)
    return _sparse._union_all_serial(part_blocks, add, mask_block, complement)


# ---------------------------------------------------------------------- #
# dtype normalisation
# ---------------------------------------------------------------------- #


def _mult_dtype(mult, blocks: list[CSRMatrix], other: CSRMatrix) -> np.dtype:  # noqa: ANN001
    """The dtype the serial kernel's product values would carry.

    Blocks whose expansion is empty short-circuit to ``result_type(a, b)``
    in the serial kernel, which can disagree with the multiplicative
    operator's output dtype (e.g. ``land`` on int64 data yields bool).  A
    one-element probe pins the authoritative dtype so every block matches the
    serial result exactly.
    """
    for blk in blocks:
        if blk.nnz and other.nnz:
            return np.asarray(mult(blk.data[:1], other.data[:1])).dtype
    return np.result_type(
        blocks[0].dtype if blocks else np.int64, other.dtype
    )


def _pair_dtype(mult, a: CSRMatrix, b: CSRMatrix) -> np.dtype:  # noqa: ANN001
    """Whole-matrix form of :func:`_mult_dtype` for the shared-memory path.

    Equivalent by construction: the first non-empty row block's leading value
    *is* ``a.data[0]`` (earlier blocks are empty), and empty blocks inherit
    the parent dtype, so both probes pin the same authoritative dtype.
    """
    if a.nnz and b.nnz:
        return np.asarray(mult(a.data[:1], b.data[:1])).dtype
    return np.result_type(a.dtype, b.dtype)


def _cast_data(part: CSRMatrix, dtype: np.dtype) -> CSRMatrix:
    if part.dtype == dtype:
        return part
    return CSRMatrix(
        part.shape,
        part.indptr,
        part.indices,
        part.data.astype(dtype, copy=False),
        _trusted=True,
    )


# ---------------------------------------------------------------------- #
# parallel entry points (dispatch targets of repro.assoc.sparse)
# ---------------------------------------------------------------------- #


def _blocked_operand(a: CSRMatrix, work: int, cfg: RuntimeConfig) -> BlockedCSR:
    block_rows = choose_block_rows(a.shape[0], work, cfg.workers, cfg.block_rows)
    return BlockedCSR.from_csr(a, block_rows)


def _shared_starts(n_rows: int, work: int, cfg: RuntimeConfig) -> np.ndarray:
    """The row partition both dispatch paths use for an *n_rows* operand."""
    block_rows = choose_block_rows(n_rows, work, cfg.workers, cfg.block_rows)
    return _row_starts(n_rows, block_rows)


def parallel_mxm(
    a: CSRMatrix, b: CSRMatrix, semiring: Semiring, config: RuntimeConfig | None = None
) -> CSRMatrix:
    """Row-blocked parallel ESC product, bit-identical to ``a.mxm(b)`` serial."""
    cfg = get_config() if config is None else config
    with _kernel_obs("parallel_mxm", cfg, a.nnz + b.nnz) as span:
        if cfg.use_shm(_shm.csr_nbytes(a) + _shm.csr_nbytes(b)):
            if a.shape[1] != b.shape[0]:
                raise SparseFormatError(f"inner dimension mismatch: {a.shape} @ {b.shape}")
            starts = _shared_starts(a.shape[0], a.nnz, cfg)
            span.set(blocks=len(starts) - 1, route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                b_ref = lease.export_csr(b)
                tasks = [
                    (a_ref, b_ref, int(r0), int(r1), semiring)
                    for r0, r1 in zip(starts[:-1], starts[1:])
                ]
                parts = get_executor(cfg).map(
                    _shm_mxm_task, tasks, label=f"parallel_mxm ({len(tasks)} shm blocks)"
                )
            out_dtype = _pair_dtype(semiring.mult, a, b)
            parts = [_cast_data(p, out_dtype) for p in parts]
            out = BlockedCSR((a.shape[0], b.shape[1]), starts, parts).to_csr()
        else:
            blocked = _blocked_operand(a, a.nnz, cfg)
            span.set(blocks=blocked.n_blocks, route="pickle")
            out = blocked.mxm(b, semiring, cfg).to_csr()
        span.set(nnz_out=out.nnz)
        return out


def parallel_mxv(
    a: CSRMatrix, x: np.ndarray, semiring: Semiring, config: RuntimeConfig | None = None
) -> np.ndarray:
    """Row-blocked parallel matrix-vector product."""
    cfg = get_config() if config is None else config
    x_arr = np.asarray(x)
    with _kernel_obs("parallel_mxv", cfg, a.nnz) as span:
        if cfg.use_shm(_shm.csr_nbytes(a) + int(x_arr.nbytes)):
            if x_arr.shape != (a.shape[1],):
                raise SparseFormatError(f"vector length {x_arr.shape} != {(a.shape[1],)}")
            starts = _shared_starts(a.shape[0], a.nnz, cfg)
            span.set(blocks=len(starts) - 1, route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                x_ref = lease.export_array(x_arr)
                tasks = [
                    (a_ref, x_ref, int(r0), int(r1), semiring)
                    for r0, r1 in zip(starts[:-1], starts[1:])
                ]
                parts = get_executor(cfg).map(
                    _shm_mxv_task, tasks, label=f"parallel_mxv ({len(tasks)} shm blocks)"
                )
            return np.concatenate(parts) if parts else np.empty(0)
        span.set(route="pickle")
        return _blocked_operand(a, a.nnz, cfg).mxv(x_arr, semiring, cfg)


def parallel_ewise_union(
    a: CSRMatrix, b: CSRMatrix, add: Monoid, config: RuntimeConfig | None = None
) -> CSRMatrix:
    """Row-blocked element-wise union: both operands share one tiling."""
    cfg = get_config() if config is None else config
    starts = _shared_starts(a.shape[0], a.nnz + b.nnz, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    with _kernel_obs("parallel_ewise_union", cfg, a.nnz + b.nnz) as span:
        span.set(blocks=len(spans))
        if cfg.use_shm(_shm.csr_nbytes(a) + _shm.csr_nbytes(b)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                b_ref = lease.export_csr(b)
                tasks = [(a_ref, b_ref, int(r0), int(r1), add) for r0, r1 in spans]
                parts = get_executor(cfg).map(
                    _shm_ewise_union_task,
                    tasks,
                    label=f"parallel_ewise_union ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (_slice_rows(a, int(r0), int(r1)), _slice_rows(b, int(r0), int(r1)), add)
                for r0, r1 in spans
            ]
            parts = get_executor(cfg).map(
                _ewise_union_task, pickled, label=f"parallel_ewise_union ({len(pickled)} blocks)"
            )
        out_dtype = np.result_type(a.dtype, b.dtype)
        parts = [_cast_data(p, out_dtype) for p in parts]
        out = BlockedCSR(a.shape, starts, parts).to_csr()
        span.set(nnz_out=out.nnz)
        return out


def parallel_ewise_intersect(
    a: CSRMatrix, b: CSRMatrix, mult, config: RuntimeConfig | None = None  # noqa: ANN001
) -> CSRMatrix:
    """Row-blocked element-wise intersection."""
    cfg = get_config() if config is None else config
    starts = _shared_starts(a.shape[0], a.nnz + b.nnz, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    with _kernel_obs("parallel_ewise_intersect", cfg, a.nnz + b.nnz) as span:
        span.set(blocks=len(spans))
        if cfg.use_shm(_shm.csr_nbytes(a) + _shm.csr_nbytes(b)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                b_ref = lease.export_csr(b)
                tasks = [(a_ref, b_ref, int(r0), int(r1), mult) for r0, r1 in spans]
                parts = get_executor(cfg).map(
                    _shm_ewise_intersect_task,
                    tasks,
                    label=f"parallel_ewise_intersect ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (_slice_rows(a, int(r0), int(r1)), _slice_rows(b, int(r0), int(r1)), mult)
                for r0, r1 in spans
            ]
            parts = get_executor(cfg).map(
                _ewise_intersect_task,
                pickled,
                label=f"parallel_ewise_intersect ({len(pickled)} blocks)",
            )
        out_dtype = np.asarray(mult(a.data[:1], b.data[:1])).dtype
        parts = [_cast_data(p, out_dtype) for p in parts]
        out = BlockedCSR(a.shape, starts, parts).to_csr()
        span.set(nnz_out=out.nnz)
        return out


def parallel_coalesce(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
    add: Monoid,
    config: RuntimeConfig | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Partition triples by row block, coalesce blocks concurrently, concat.

    The stable block partition keeps each coordinate's duplicates in their
    original relative order inside exactly one block, so per-block stable
    sorts and ``reduceat`` reproduce the serial output bit-for-bit.
    """
    cfg = get_config() if config is None else config
    n_rows = shape[0]
    block_rows = choose_block_rows(n_rows, rows.size, cfg.workers, cfg.block_rows)
    n_blocks = -(-n_rows // block_rows) if n_rows else 1
    if n_blocks <= 1 or rows.size == 0:
        # zero triples would leave every block empty below (nothing to
        # concatenate); the serial core already handles that shape exactly
        return _sparse._coalesce_core(rows, cols, vals, shape, add)
    with _kernel_obs("parallel_coalesce", cfg, int(rows.size)) as span:
        block_id = rows // np.int64(block_rows)
        order = np.argsort(block_id, kind="stable")
        rows, cols, vals = rows[order], cols[order], vals[order]
        counts = np.bincount(block_id, minlength=n_blocks)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        spans = [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
        span.set(blocks=len(spans))
        if cfg.use_shm(int(rows.nbytes + cols.nbytes + vals.nbytes)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                r_ref = lease.export_array(rows)
                c_ref = lease.export_array(cols)
                v_ref = lease.export_array(vals)
                tasks = [(r_ref, c_ref, v_ref, lo, hi, shape, add) for lo, hi in spans]
                parts = get_executor(cfg).map(
                    _shm_coalesce_task, tasks, label=f"parallel_coalesce ({len(tasks)} shm blocks)"
                )
        else:
            pickled = [(rows[lo:hi], cols[lo:hi], vals[lo:hi], shape, add) for lo, hi in spans]
            parts = get_executor(cfg).map(
                _coalesce_task, pickled, label=f"parallel_coalesce ({len(pickled)} blocks)"
            )
        out_r = np.concatenate([p[0] for p in parts])
        out_c = np.concatenate([p[1] for p in parts])
        out_v = np.concatenate([p[2] for p in parts])
        span.set(nnz_out=int(out_r.size))
        return out_r, out_c, out_v


# ---------------------------------------------------------------------- #
# masked parallel entry points (dispatch targets of repro.assoc.planner)
#
# The mask shares the operand's row tiling, so each block task sees exactly
# the mask rows it owns; the bit-identity argument is unchanged — masked
# filtering is per-row, so a row partition of the masked kernel is a
# partition of the masked serial output.
# ---------------------------------------------------------------------- #


def parallel_masked_mxm(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring,
    mask: CSRMatrix,
    config: RuntimeConfig | None = None,
) -> CSRMatrix:
    """Row-blocked fused masked product, bit-identical to the serial masked
    kernel (and therefore to eager-then-filter)."""
    cfg = get_config() if config is None else config
    starts = _shared_starts(a.shape[0], a.nnz, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    out_dtype = _sparse._mxm_out_dtype(a, b, semiring.mult)
    with _kernel_obs("parallel_masked_mxm", cfg, a.nnz + b.nnz) as span:
        span.set(blocks=len(spans), mask_nnz=mask.nnz)
        if cfg.use_shm(_shm.csr_nbytes(a) + _shm.csr_nbytes(b) + _shm.csr_nbytes(mask)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                b_ref = lease.export_csr(b)
                mask_ref = lease.export_csr(mask)
                tasks = [
                    (a_ref, b_ref, mask_ref, int(r0), int(r1), semiring, out_dtype)
                    for r0, r1 in spans
                ]
                parts = get_executor(cfg).map(
                    _shm_masked_mxm_task,
                    tasks,
                    label=f"parallel_masked_mxm ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (_slice_rows(a, int(r0), int(r1)), b, semiring, _slice_rows(mask, int(r0), int(r1)), out_dtype)
                for r0, r1 in spans
            ]
            parts = get_executor(cfg).map(
                _masked_mxm_task, pickled, label=f"parallel_masked_mxm ({len(pickled)} blocks)"
            )
        parts = [_cast_data(p, out_dtype) for p in parts]
        out = BlockedCSR((a.shape[0], b.shape[1]), starts, parts).to_csr()
        span.set(nnz_out=out.nnz)
        return out


def parallel_masked_mxv(
    a: CSRMatrix,
    x: np.ndarray,
    semiring: Semiring,
    allow: np.ndarray,
    config: RuntimeConfig | None = None,
) -> np.ndarray:
    """Row-blocked masked matrix-vector product."""
    cfg = get_config() if config is None else config
    starts = _shared_starts(a.shape[0], a.nnz, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    x_arr = np.asarray(x)
    allow_arr = np.asarray(allow)
    with _kernel_obs("parallel_masked_mxv", cfg, a.nnz) as span:
        span.set(blocks=len(spans))
        if cfg.use_shm(_shm.csr_nbytes(a) + int(x_arr.nbytes + allow_arr.nbytes)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                x_ref = lease.export_array(x_arr)
                allow_ref = lease.export_array(allow_arr)
                tasks = [(a_ref, x_ref, allow_ref, int(r0), int(r1), semiring) for r0, r1 in spans]
                parts = get_executor(cfg).map(
                    _shm_masked_mxv_task,
                    tasks,
                    label=f"parallel_masked_mxv ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (_slice_rows(a, int(r0), int(r1)), x_arr, semiring, allow_arr[int(r0):int(r1)])
                for r0, r1 in spans
            ]
            parts = get_executor(cfg).map(
                _masked_mxv_task, pickled, label=f"parallel_masked_mxv ({len(pickled)} blocks)"
            )
        return np.concatenate(parts) if parts else np.empty(0)


def parallel_masked_intersect(
    a: CSRMatrix,
    b: CSRMatrix,
    mult,  # noqa: ANN001
    mask: CSRMatrix,
    complement: bool,
    config: RuntimeConfig | None = None,
) -> CSRMatrix:
    """Row-blocked fused masked element-wise intersection."""
    cfg = get_config() if config is None else config
    starts = _shared_starts(a.shape[0], a.nnz + b.nnz, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    with _kernel_obs("parallel_masked_intersect", cfg, a.nnz + b.nnz) as span:
        span.set(blocks=len(spans), mask_nnz=mask.nnz)
        if cfg.use_shm(_shm.csr_nbytes(a) + _shm.csr_nbytes(b) + _shm.csr_nbytes(mask)):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                a_ref = lease.export_csr(a)
                b_ref = lease.export_csr(b)
                mask_ref = lease.export_csr(mask)
                tasks = [
                    (a_ref, b_ref, mask_ref, int(r0), int(r1), mult, complement)
                    for r0, r1 in spans
                ]
                parts = get_executor(cfg).map(
                    _shm_masked_intersect_task,
                    tasks,
                    label=f"parallel_masked_intersect ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (
                    _slice_rows(a, int(r0), int(r1)),
                    _slice_rows(b, int(r0), int(r1)),
                    mult,
                    _slice_rows(mask, int(r0), int(r1)),
                    complement,
                )
                for r0, r1 in spans
            ]
            parts = get_executor(cfg).map(
                _masked_intersect_task,
                pickled,
                label=f"parallel_masked_intersect ({len(pickled)} blocks)",
            )
        out_dtype = np.asarray(mult(a.data[:1], b.data[:1])).dtype
        parts = [_cast_data(p, out_dtype) for p in parts]
        out = BlockedCSR(a.shape, starts, parts).to_csr()
        span.set(nnz_out=out.nnz)
        return out


def parallel_union_all(
    parts: list[CSRMatrix],
    add: Monoid,
    mask: CSRMatrix | None,
    complement: bool,
    config: RuntimeConfig | None = None,
) -> CSRMatrix:
    """Row-blocked n-ary fused union (optionally masked): every operand
    shares one tiling; each block concatenates its slices and coalesces once."""
    cfg = get_config() if config is None else config
    shape = parts[0].shape
    work = sum(p.nnz for p in parts)
    starts = _shared_starts(shape[0], work, cfg)
    spans = list(zip(starts[:-1], starts[1:]))
    operand_bytes = sum(_shm.csr_nbytes(p) for p in parts) + (
        0 if mask is None else _shm.csr_nbytes(mask)
    )
    with _kernel_obs("parallel_union_all", cfg, work) as span:
        span.set(blocks=len(spans), parts=len(parts))
        if cfg.use_shm(operand_bytes):
            span.set(route="shm")
            with _shm.OperandLease() as lease:
                part_refs = tuple(lease.export_csr(p) for p in parts)
                mask_ref = None if mask is None else lease.export_csr(mask)
                tasks = [
                    (part_refs, add, mask_ref, complement, int(r0), int(r1)) for r0, r1 in spans
                ]
                blocks = get_executor(cfg).map(
                    _shm_union_all_task,
                    tasks,
                    label=f"parallel_union_all ({len(tasks)} shm blocks)",
                )
        else:
            pickled = [
                (
                    [_slice_rows(p, int(r0), int(r1)) for p in parts],
                    add,
                    None if mask is None else _slice_rows(mask, int(r0), int(r1)),
                    complement,
                )
                for r0, r1 in spans
            ]
            blocks = get_executor(cfg).map(
                _union_all_task, pickled, label=f"parallel_union_all ({len(pickled)} blocks)"
            )
        out_dtype = np.result_type(*(p.dtype for p in parts))
        blocks = [_cast_data(p, out_dtype) for p in blocks]
        out = BlockedCSR(shape, starts, blocks).to_csr()
        span.set(nnz_out=out.nnz)
        return out
