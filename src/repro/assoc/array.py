"""D4M-style associative arrays: sparse matrices with string row/column keys.

The paper notes that real networks label endpoints with strings (IPs, host
names), "which can be handled with the more general associative array
abstraction" (Kepner & Jananthan, *Mathematics of Big Data*).  An
:class:`AssociativeArray` is a sparse matrix whose axes are **sorted tuples of
string keys**; binary operations align operands by key (set union), so arrays
built over different endpoint populations compose without manual index
bookkeeping — the property that makes streaming traffic-matrix accumulation
(refs [16]-[19]) one-line code.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.assoc.semiring import BinaryOp, Monoid, PLUS_MONOID, PLUS_TIMES, Semiring, TIMES
from repro.assoc.sparse import CSRMatrix
from repro.errors import AssocArrayError

__all__ = ["AssociativeArray"]


def _as_labels(keys: Iterable[str]) -> tuple[str, ...]:
    labels = tuple(str(k) for k in keys)
    if any(not k for k in labels):
        raise AssocArrayError("associative-array keys may not be empty strings")
    if list(labels) != sorted(set(labels)):
        raise AssocArrayError("label axes must be sorted and duplicate-free")
    return labels


def _union_labels(a: tuple[str, ...], b: tuple[str, ...]) -> tuple[str, ...]:
    if a == b:
        return a
    return tuple(sorted(set(a) | set(b)))


def _remap(labels: tuple[str, ...], target: tuple[str, ...]) -> np.ndarray:
    """Index of each of *labels* inside the (sorted) *target* axis."""
    if labels == target:
        return np.arange(len(labels), dtype=np.int64)
    tgt = np.asarray(target)
    return np.searchsorted(tgt, np.asarray(labels)).astype(np.int64)


class AssociativeArray:
    """A sparse matrix keyed by sorted string labels on both axes.

    Construction normalises keys to sorted order; all arithmetic aligns
    operands by key union, mirroring D4M semantics.  The underlying storage is
    a canonical :class:`~repro.assoc.sparse.CSRMatrix`.
    """

    __slots__ = ("row_labels", "col_labels", "csr")

    def __init__(
        self,
        row_labels: Sequence[str],
        col_labels: Sequence[str],
        csr: CSRMatrix,
    ) -> None:
        self.row_labels = _as_labels(row_labels)
        self.col_labels = _as_labels(col_labels)
        if csr.shape != (len(self.row_labels), len(self.col_labels)):
            raise AssocArrayError(
                f"storage shape {csr.shape} does not match label axes "
                f"({len(self.row_labels)}, {len(self.col_labels)})"
            )
        self.csr = csr

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(
        cls,
        rows: Sequence[str],
        cols: Sequence[str],
        vals: Sequence[float] | np.ndarray,
        *,
        row_labels: Sequence[str] | None = None,
        col_labels: Sequence[str] | None = None,
        add: Monoid = PLUS_MONOID,
    ) -> "AssociativeArray":
        """Build from ``(row key, col key, value)`` triples.

        Duplicate coordinates combine with *add* (default: sum — packet
        accumulation).  When explicit axis label sets are given they must
        cover every key used; otherwise axes are the sorted distinct keys.
        """
        rows = [str(r) for r in rows]
        cols = [str(c) for c in cols]
        vals = np.asarray(vals)
        if not (len(rows) == len(cols) == vals.shape[0] if vals.ndim else len(rows) == len(cols) == 0):
            raise AssocArrayError("rows, cols, vals must be equal length")
        r_axis = tuple(sorted(set(rows))) if row_labels is None else tuple(sorted(set(row_labels)))
        c_axis = tuple(sorted(set(cols))) if col_labels is None else tuple(sorted(set(col_labels)))
        r_lookup = {k: i for i, k in enumerate(r_axis)}
        c_lookup = {k: i for i, k in enumerate(c_axis)}
        try:
            r_idx = np.fromiter((r_lookup[r] for r in rows), dtype=np.int64, count=len(rows))
            c_idx = np.fromiter((c_lookup[c] for c in cols), dtype=np.int64, count=len(cols))
        except KeyError as exc:
            raise AssocArrayError(f"key {exc.args[0]!r} not present in the given label axis") from None
        csr = CSRMatrix.from_triples(r_idx, c_idx, vals, (len(r_axis), len(c_axis)), add)
        return cls(r_axis, c_axis, csr)

    @classmethod
    def from_dict(cls, entries: Mapping[tuple[str, str], float]) -> "AssociativeArray":
        """Build from a ``{(row, col): value}`` mapping."""
        if not entries:
            return cls.empty((), ())
        rows, cols = zip(*entries.keys())
        return cls.from_triples(list(rows), list(cols), np.asarray(list(entries.values())))

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        row_labels: Sequence[str],
        col_labels: Sequence[str],
    ) -> "AssociativeArray":
        """Build from a dense array whose axes are *already sorted* label lists."""
        return cls(row_labels, col_labels, CSRMatrix.from_dense(np.asarray(dense)))

    @classmethod
    def empty(cls, row_labels: Sequence[str] = (), col_labels: Sequence[str] = ()) -> "AssociativeArray":
        r = tuple(sorted(set(row_labels)))
        c = tuple(sorted(set(col_labels)))
        return cls(r, c, CSRMatrix.empty((len(r), len(c))))

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    def triples(self) -> list[tuple[str, str, object]]:
        """All entries as ``(row key, col key, value)`` in row-major key order."""
        r, c, v = self.csr.triples()
        return [
            (self.row_labels[i], self.col_labels[j], v[k].item())
            for k, (i, j) in enumerate(zip(r.tolist(), c.tolist()))
        ]

    def to_dense(self) -> np.ndarray:
        return self.csr.to_dense()

    def to_dict(self) -> dict[tuple[str, str], object]:
        return {(r, c): v for r, c, v in self.triples()}

    def __getitem__(self, key: tuple[str | Sequence[str] | slice, str | Sequence[str] | slice]):
        """Scalar lookup ``a["WS1", "ADV4"]`` or sub-array ``a[keys, :]``.

        Scalar lookups on absent coordinates return 0 (the sparse convention);
        unknown *labels* raise, because asking about an endpoint that is not
        on the axis is almost always a bug.
        """
        rk, ck = key
        if isinstance(rk, str) and isinstance(ck, str):
            i = self._row_index(rk)
            j = self._col_index(ck)
            start, end = self.csr.indptr[i], self.csr.indptr[i + 1]
            pos = np.searchsorted(self.csr.indices[start:end], j)
            if pos < end - start and self.csr.indices[start + pos] == j:
                return self.csr.data[start + pos].item()
            return 0
        return self.extract(rk, ck)

    def _row_index(self, key: str) -> int:
        i = int(np.searchsorted(np.asarray(self.row_labels), key))
        if i >= len(self.row_labels) or self.row_labels[i] != key:
            raise AssocArrayError(f"unknown row key {key!r}")
        return i

    def _col_index(self, key: str) -> int:
        j = int(np.searchsorted(np.asarray(self.col_labels), key))
        if j >= len(self.col_labels) or self.col_labels[j] != key:
            raise AssocArrayError(f"unknown column key {key!r}")
        return j

    def _resolve_axis(
        self, sel: str | Sequence[str] | slice, labels: tuple[str, ...]
    ) -> tuple[str, ...]:
        if isinstance(sel, slice):
            if sel != slice(None):
                raise AssocArrayError("only the full slice ':' is supported on label axes")
            return labels
        if isinstance(sel, str):
            if sel == ":":  # D4M-style full-axis string
                return labels
            if sel.endswith("*"):  # D4M StartsWith
                prefix = sel[:-1]
                return tuple(lb for lb in labels if lb.startswith(prefix))
            return (sel,)
        return tuple(sel)

    def extract(
        self,
        rows: str | Sequence[str] | slice,
        cols: str | Sequence[str] | slice,
    ) -> "AssociativeArray":
        """Sub-array on the selected keys.  ``"WS*"`` selects by prefix."""
        r_keys = sorted(set(self._resolve_axis(rows, self.row_labels)))
        c_keys = sorted(set(self._resolve_axis(cols, self.col_labels)))
        r_idx = np.asarray([self._row_index(k) for k in r_keys], dtype=np.int64)
        c_idx = np.asarray([self._col_index(k) for k in c_keys], dtype=np.int64)
        return AssociativeArray(tuple(r_keys), tuple(c_keys), self.csr.extract(r_idx, c_idx))

    # ------------------------------------------------------------------ #
    # alignment and algebra
    # ------------------------------------------------------------------ #

    def reindex(
        self, row_labels: Sequence[str], col_labels: Sequence[str]
    ) -> "AssociativeArray":
        """Embed this array into larger (sorted) label axes."""
        r_axis = _as_labels(row_labels)
        c_axis = _as_labels(col_labels)
        if not (set(self.row_labels) <= set(r_axis) and set(self.col_labels) <= set(c_axis)):
            raise AssocArrayError("reindex axes must be supersets of the current axes")
        r, c, v = self.csr.triples()
        r_map = _remap(self.row_labels, r_axis)
        c_map = _remap(self.col_labels, c_axis)
        csr = CSRMatrix.from_triples(
            r_map[r], c_map[c], v, (len(r_axis), len(c_axis))
        )
        return AssociativeArray(r_axis, c_axis, csr)

    def _aligned(self, other: "AssociativeArray") -> tuple["AssociativeArray", "AssociativeArray"]:
        r_axis = _union_labels(self.row_labels, other.row_labels)
        c_axis = _union_labels(self.col_labels, other.col_labels)
        return self.reindex(r_axis, c_axis), other.reindex(r_axis, c_axis)

    def _mask_csr(
        self,
        mask: object,
        row_labels: tuple[str, ...],
        col_labels: tuple[str, ...],
    ) -> "CSRMatrix":
        """Resolve *mask* to a CSR pattern over the given label axes.

        An :class:`AssociativeArray` mask is key-aligned (reindexed onto the
        output axes — its keys must be a subset); anything else goes through
        :func:`repro.assoc.expr.as_mask` and must already match the output
        shape.
        """
        from repro.assoc import expr

        if isinstance(mask, AssociativeArray):
            return mask.reindex(row_labels, col_labels).csr
        pattern = expr.as_mask(mask).pattern
        if pattern.shape != (len(row_labels), len(col_labels)):
            raise AssocArrayError(
                f"mask shape {pattern.shape} does not match the "
                f"({len(row_labels)}, {len(col_labels)}) output axes"
            )
        return pattern

    def ewise_add(
        self,
        other: "AssociativeArray",
        add: Monoid = PLUS_MONOID,
        *,
        mask: object = None,
        complement: bool = False,
    ) -> "AssociativeArray":
        """Key-aligned element-wise addition over the union of patterns.

        With *mask* (another array, a CSR pattern, or a dense boolean grid)
        the union is masked on the expression layer: triples outside the
        allowed coordinates are dropped before the combining sort.
        """
        a, b = self._aligned(other)
        if mask is None:
            csr = a.csr.ewise_union(b.csr, add)
        else:
            from repro.assoc import expr

            m = self._mask_csr(mask, a.row_labels, a.col_labels)
            csr = expr.lazy(a.csr).ewise(b.csr, add, how="union").new(
                mask=m, complement=complement
            )
        return AssociativeArray(a.row_labels, a.col_labels, csr)

    def ewise_mult(
        self,
        other: "AssociativeArray",
        mult: BinaryOp = TIMES,
        *,
        mask: object = None,
        complement: bool = False,
    ) -> "AssociativeArray":
        """Key-aligned element-wise multiply over the pattern intersection
        (optionally masked — the planner pushes the mask into the left
        operand, so the unmasked intersection is never built)."""
        a, b = self._aligned(other)
        if mask is None:
            csr = a.csr.ewise_intersect(b.csr, mult)
        else:
            from repro.assoc import expr

            m = self._mask_csr(mask, a.row_labels, a.col_labels)
            csr = expr.lazy(a.csr).ewise(b.csr, mult, how="intersect").new(
                mask=m, complement=complement
            )
        return AssociativeArray(a.row_labels, a.col_labels, csr)

    def select(self, mask: object, *, complement: bool = False) -> "AssociativeArray":
        """Entries at coordinates the structural *mask* allows (``A⟨M⟩``)."""
        from repro.assoc.sparse import masked_select

        m = self._mask_csr(mask, self.row_labels, self.col_labels)
        return AssociativeArray(
            self.row_labels, self.col_labels, masked_select(self.csr, m, complement)
        )

    def __add__(self, other: "AssociativeArray") -> "AssociativeArray":
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        return self.ewise_add(other)

    def __mul__(self, other):  # noqa: ANN001
        if isinstance(other, AssociativeArray):
            return self.ewise_mult(other)
        if isinstance(other, (int, float, np.number)):
            return AssociativeArray(
                self.row_labels,
                self.col_labels,
                CSRMatrix(
                    self.shape,
                    self.csr.indptr.copy(),
                    self.csr.indices.copy(),
                    self.csr.data * other,
                    _trusted=True,
                ),
            )
        return NotImplemented

    __rmul__ = __mul__

    def mxm(
        self,
        other: "AssociativeArray",
        semiring: Semiring = PLUS_TIMES,
        *,
        mask: object = None,
        complement: bool = False,
    ) -> "AssociativeArray":
        """Key-aligned matrix product: inner axes are unioned before multiply.

        With a non-complemented *mask* the product runs the fused masked
        kernel — rows of the output the mask excludes are never expanded.
        """
        inner = _union_labels(self.col_labels, other.row_labels)
        a = self.reindex(self.row_labels, inner)
        b = other.reindex(inner, other.col_labels)
        if mask is None:
            csr = a.csr.mxm(b.csr, semiring)
        else:
            from repro.assoc import expr

            m = self._mask_csr(mask, self.row_labels, other.col_labels)
            csr = expr.lazy(a.csr).mxm(b.csr, semiring).new(mask=m, complement=complement)
        return AssociativeArray(self.row_labels, other.col_labels, csr)

    def __matmul__(self, other: "AssociativeArray") -> "AssociativeArray":
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        return self.mxm(other)

    def transpose(self) -> "AssociativeArray":
        return AssociativeArray(self.col_labels, self.row_labels, self.csr.transpose())

    @property
    def T(self) -> "AssociativeArray":
        return self.transpose()

    # ------------------------------------------------------------------ #
    # reductions and summaries
    # ------------------------------------------------------------------ #

    def reduce_rows(self, add: Monoid = PLUS_MONOID) -> dict[str, object]:
        """Per-row-key reduction, e.g. packets sent per source."""
        vec = self.csr.reduce_rows(add)
        return {k: vec[i].item() for i, k in enumerate(self.row_labels)}

    def reduce_cols(self, add: Monoid = PLUS_MONOID) -> dict[str, object]:
        """Per-column-key reduction, e.g. packets received per destination."""
        vec = self.csr.reduce_cols(add)
        return {k: vec[j].item() for j, k in enumerate(self.col_labels)}

    def sum(self) -> object:
        """Total of all stored values."""
        return self.csr.reduce_scalar(PLUS_MONOID)

    def top_rows(self, k: int, add: Monoid = PLUS_MONOID) -> list[tuple[str, object]]:
        """The *k* heaviest row keys — supernode detection in one call."""
        totals = self.reduce_rows(add)
        return sorted(totals.items(), key=lambda kv: (-float(kv[1]), kv[0]))[:k]

    def apply(self, func: Callable[[np.ndarray], np.ndarray]) -> "AssociativeArray":
        """Apply a vectorized function to stored values (pattern unchanged)."""
        data = np.asarray(func(self.csr.data.copy()))
        if data.shape != self.csr.data.shape:
            raise AssocArrayError("apply() function must preserve the value-array shape")
        return AssociativeArray(
            self.row_labels,
            self.col_labels,
            CSRMatrix(self.shape, self.csr.indptr.copy(), self.csr.indices.copy(), data, _trusted=True),
        )

    def relabel(
        self,
        row_map: Callable[[str], str] | None = None,
        col_map: Callable[[str], str] | None = None,
        add: Monoid = PLUS_MONOID,
    ) -> "AssociativeArray":
        """Rename keys through mapping functions, merging collisions with *add*.

        This is the anonymization primitive: hash every endpoint label and the
        traffic matrix is analysable without exposing identities.
        """
        r, c, v = self.csr.triples()
        rows = [row_map(self.row_labels[i]) if row_map else self.row_labels[i] for i in r.tolist()]
        cols = [col_map(self.col_labels[j]) if col_map else self.col_labels[j] for j in c.tolist()]
        new_r_axis = sorted({(row_map(k) if row_map else k) for k in self.row_labels})
        new_c_axis = sorted({(col_map(k) if col_map else k) for k in self.col_labels})
        return AssociativeArray.from_triples(
            rows, cols, v, row_labels=new_r_axis, col_labels=new_c_axis, add=add
        )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        return (
            self.row_labels == other.row_labels
            and self.col_labels == other.col_labels
            and self.csr == other.csr
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return (
            f"AssociativeArray(rows={len(self.row_labels)}, "
            f"cols={len(self.col_labels)}, nnz={self.nnz})"
        )
