"""Always-on process-local metrics: counters, gauges, log-bucket histograms.

The registry is the cheap half of :mod:`repro.obs`: every hot path in the
runtime, the blocked kernels, the shm plane, and the scenario service counts
through it unconditionally — one dict lookup plus one locked integer add per
event, no sampling, no configuration.  The expensive half (the span tracer in
:mod:`repro.obs.trace`) is opt-in; the registry is not.

Three metric kinds, all thread-safe:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a point-in-time level (``set``/``inc``/``dec``), e.g. the
  number of live shm segments or the service queue depth;
* :class:`Histogram` — a fixed log-scale (base-2) bucket array over float
  observations, tracking count/sum/min/max alongside the buckets.  Log-scale
  buckets make one layout serve nanosecond span costs and second-long batch
  builds without per-metric tuning.

:func:`snapshot` renders everything JSON-able (sorted keys, deterministic),
and :func:`merge_snapshot` folds one process's snapshot into another's
registry — how worker-side totals reach the dispatching parent.

**This module (with :mod:`repro.obs.trace`) is the only place in the library
allowed to read wall clocks.**  Every instrumented module times through
:func:`monotonic_ns` / :func:`wall_ns` here, which keeps the determinism
contract checkable: the ``DET002`` lint bans clock reads in contract code,
``OBS002`` bans them everywhere outside ``repro.obs``, and this module carries
the one sanctioned exemption.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Mapping, Union

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Metric",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "snapshot",
    "merge_snapshot",
    "reset_metrics",
    "monotonic_ns",
    "wall_ns",
]


def monotonic_ns() -> int:
    """Monotonic nanoseconds — the duration clock every instrumented module
    uses (never ``time.*`` directly; see the module docstring)."""
    return time.perf_counter_ns()


def wall_ns() -> int:
    """Epoch nanoseconds — the cross-process alignment clock for span starts."""
    return time.time_ns()


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += int(amount)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time level (float); last write wins."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Histogram bucket exponent range: bucket ``e`` counts observations in
#: ``(2^(e-1), 2^e]``.  The clamp range spans sub-microsecond (2^-20 ≈ 1e-6)
#: to ~10^12, wide enough for nanosecond costs in ms units and for byte sizes.
_BUCKET_LOW_EXP = -20
_BUCKET_HIGH_EXP = 40


def bucket_exponent(value: float) -> int:
    """The base-2 bucket exponent for *value* (clamped to the fixed range)."""
    if value <= 0.0:
        return _BUCKET_LOW_EXP
    # frexp(v) = (m, e) with v = m * 2^e and 0.5 <= m < 1, so 2^(e-1) <= v < 2^e;
    # exact powers of two land in their own bucket (upper bound inclusive).
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:
        exponent -= 1
    return max(_BUCKET_LOW_EXP, min(_BUCKET_HIGH_EXP, exponent))


class Histogram:
    """Fixed log-scale (base-2) histogram over float observations.

    Buckets are indexed by :func:`bucket_exponent`; count, sum, min, and max
    are tracked exactly, so mean and totals are lossless even though the
    distribution itself is quantised to powers of two.
    """

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        e = bucket_exponent(v)
        with self._lock:
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            self._buckets[e] = self._buckets.get(e, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-able snapshot: scalars plus ``{"<=2^e": count}`` buckets."""
        with self._lock:
            buckets = {f"le_2^{e}": n for e, n in sorted(self._buckets.items())}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "mean": self._sum / self._count if self._count else 0.0,
                "buckets": buckets,
            }

    def _merge(self, other: Mapping[str, object]) -> None:
        """Fold a :meth:`to_dict` snapshot into this histogram (registry merge)."""
        with self._lock:
            self._count += int(other.get("count", 0))  # type: ignore[arg-type]
            self._sum += float(other.get("sum", 0.0))  # type: ignore[arg-type]
            o_min = other.get("min")
            o_max = other.get("max")
            if o_min is not None and float(o_min) < self._min:  # type: ignore[arg-type]
                self._min = float(o_min)  # type: ignore[arg-type]
            if o_max is not None and float(o_max) > self._max:  # type: ignore[arg-type]
                self._max = float(o_max)  # type: ignore[arg-type]
            for key, n in dict(other.get("buckets", {})).items():  # type: ignore[arg-type]
                e = int(str(key).rpartition("^")[2])
                self._buckets[e] = self._buckets.get(e, 0) + int(n)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.3f})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe get-or-create registry over named metrics.

    One process-wide instance (:func:`get_registry`) backs the module-level
    helpers; tests may build private registries.  Asking for an existing name
    with a different kind raises :class:`~repro.errors.ObservabilityError` —
    a name is one metric forever.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type) -> Metric:
        if not name or not isinstance(name, str):
            raise ObservabilityError(f"metric names are non-empty strings, got {name!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ObservabilityError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._get_or_create(name, Histogram)
        assert isinstance(metric, Histogram)
        return metric

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A JSON-able view of every metric, grouped by kind, sorted by name."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.to_dict()
        return out

    def merge(self, other: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Counters and histograms are additive; gauges take the incoming value
        (a level reported later wins).  This is how worker-side totals are
        shipped back with results and folded into the parent's registry.
        """
        for name, value in dict(other.get("counters", {})).items():
            self.counter(name).inc(int(value))  # type: ignore[arg-type]
        for name, value in dict(other.get("gauges", {})).items():
            self.gauge(name).set(float(value))  # type: ignore[arg-type]
        for name, doc in dict(other.get("histograms", {})).items():
            self.histogram(name)._merge(doc)  # type: ignore[arg-type]

    def reset(self) -> None:
        """Drop every metric (tests only — production metrics are cumulative)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry behind the module-level helpers."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get-or-create a :class:`Counter` in the process registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a :class:`Gauge` in the process registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a :class:`Histogram` in the process registry."""
    return _REGISTRY.histogram(name)


def snapshot() -> dict[str, dict[str, object]]:
    """A JSON-able snapshot of the process registry."""
    return _REGISTRY.snapshot()


def merge_snapshot(other: Mapping[str, Mapping[str, object]]) -> None:
    """Fold another process's snapshot into this process's registry."""
    _REGISTRY.merge(other)


def reset_metrics() -> None:
    """Clear the process registry (tests only)."""
    _REGISTRY.reset()
