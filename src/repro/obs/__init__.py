"""Zero-dependency observability: metrics registry + opt-in span tracer.

Two halves, one import surface:

* :mod:`repro.obs.metrics` — always-on process-local counters, gauges, and
  log-bucket histograms behind a thread-safe registry, plus the sanctioned
  clock helpers (:func:`monotonic_ns` / :func:`wall_ns`) every instrumented
  module must use instead of ``time.*``.
* :mod:`repro.obs.trace` — an opt-in span tracer (ring buffer, parent links,
  attributes) enabled via ``RuntimeConfig.tracing`` or ``REPRO_TRACE``,
  exportable as Chrome/Perfetto ``trace_event`` JSON and as a text flame
  summary; a shared no-op singleton keeps the disabled path near-free.

``python -m repro.obs`` dumps a metrics snapshot or converts a raw span dump
to Perfetto JSON — see :mod:`repro.obs.__main__`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    merge_snapshot,
    monotonic_ns,
    reset_metrics,
    snapshot,
    wall_ns,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    NULL_TRACER,
    TRACE_ENV,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    collecting,
    disable,
    dump_spans,
    enable,
    flame_summary,
    flush_active,
    get_tracer,
    is_enabled,
    load_spans,
    sink_path,
    to_trace_events,
    write_trace_json,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "snapshot",
    "merge_snapshot",
    "reset_metrics",
    "monotonic_ns",
    "wall_ns",
    # tracing
    "DEFAULT_CAPACITY",
    "TRACE_ENV",
    "SpanRecord",
    "Span",
    "NullSpan",
    "NullTracer",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "enable",
    "disable",
    "is_enabled",
    "sink_path",
    "flush_active",
    "collecting",
    "to_trace_events",
    "write_trace_json",
    "dump_spans",
    "load_spans",
    "flame_summary",
]
