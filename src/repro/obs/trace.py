"""Opt-in span tracer: ring-buffered spans, Perfetto export, flame summary.

The tracer is the expensive half of :mod:`repro.obs` and therefore strictly
opt-in: enable it with ``runtime.configure(tracing=True)`` (or the
``REPRO_TRACE`` environment variable) and every instrumented hot path —
executor dispatch, blocked kernels, shm exports, plan steps, service batches —
records :class:`SpanRecord` entries into a bounded ring.  Disabled (the
default), :func:`get_tracer` returns the shared :data:`NULL_TRACER` singleton
whose ``span()`` hands back the one shared :data:`NULL_SPAN` object — no
allocation, no clock read, no branch beyond the method call, an overhead the
gated ``benchmarks/bench_obs_overhead.py`` pins below 5%.

Spans are context managers with parent links (a thread-local stack) and
free-form attributes::

    with tracer.span("kernel.parallel_mxm", backend="thread", blocks=8) as sp:
        out = ...
        sp.set(nnz_out=out.nnz)

Worker-side spans are collected into a private :class:`Tracer` via
:func:`collecting` (a thread-local override, so pool threads never race the
process-global ring), shipped back with the task result as picklable
:class:`SpanRecord` tuples, and stitched under the dispatching span with
:meth:`Tracer.adopt` — one trace tree across threads *and* processes, aligned
on the epoch clock.

Exports: :func:`to_trace_events` / :func:`write_trace_json` produce Chrome /
Perfetto ``trace_event`` JSON (load it at https://ui.perfetto.dev), and
:func:`flame_summary` renders a by-name aggregation as text.  A sink path
(``enable(sink=...)`` or ``REPRO_TRACE=/path/trace.json``) makes
:func:`flush_active` — wired into
:func:`repro.runtime.executor.shutdown_executors` and thus ``atexit`` — write
the ring out instead of dropping buffered spans at teardown.

Like :mod:`repro.obs.metrics`, this module is exempt from the wall-clock
lints (``DET002``/``OBS002``): it owns the clocks everything else borrows.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "TRACE_ENV",
    "DEFAULT_CAPACITY",
    "SPAN_FILE_VERSION",
    "SpanRecord",
    "Span",
    "NullSpan",
    "NullTracer",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "enable",
    "disable",
    "is_enabled",
    "sink_path",
    "flush_active",
    "collecting",
    "to_trace_events",
    "write_trace_json",
    "dump_spans",
    "load_spans",
    "flame_summary",
]

#: Environment opt-in: ``1``/``true``/``on`` enables tracing; any other
#: non-empty value enables it *and* installs that value as the flush sink path.
TRACE_ENV = "REPRO_TRACE"

#: Default ring capacity (spans retained); old spans are dropped FIFO.
DEFAULT_CAPACITY = 65_536

#: Version stamp for raw span dumps (``dump_spans``/``load_spans``).
SPAN_FILE_VERSION = 1

_FALSEY = frozenset({"", "0", "false", "no", "off"})
_TRUTHY = frozenset({"1", "true", "yes", "on"})

_id_lock = threading.Lock()
_id_seq = 0


def _next_span_id() -> int:
    """Process-unique span ids, salted by pid so stitched worker records from
    a process pool can never collide with the parent's ids."""
    global _id_seq
    with _id_lock:
        _id_seq += 1
        return (os.getpid() << 40) + _id_seq


@dataclass(frozen=True)
class SpanRecord:
    """One completed span — immutable, picklable, process-portable.

    ``start_ns`` is epoch time (cross-process alignable); ``dur_ns`` is
    measured on the monotonic clock, so durations are immune to wall-clock
    steps even though starts are not.
    """

    name: str
    start_ns: int
    dur_ns: int
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    attrs: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "SpanRecord":
        try:
            return cls(
                name=str(doc["name"]),
                start_ns=int(doc["start_ns"]),  # type: ignore[arg-type]
                dur_ns=int(doc["dur_ns"]),  # type: ignore[arg-type]
                span_id=int(doc["span_id"]),  # type: ignore[arg-type]
                parent_id=(
                    None if doc.get("parent_id") is None else int(doc["parent_id"])  # type: ignore[arg-type]
                ),
                pid=int(doc.get("pid", 0)),  # type: ignore[arg-type]
                tid=int(doc.get("tid", 0)),  # type: ignore[arg-type]
                attrs=tuple(sorted(dict(doc.get("attrs", {})).items())),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span record: {exc}") from exc


class Span:
    """A live span; always use as a context manager (``with tracer.span(...)``).

    ``set(**attrs)`` adds attributes any time before exit.  Entering pushes
    this span onto the tracer's thread-local stack (so nested spans link to
    it); exiting records an immutable :class:`SpanRecord` into the ring.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "_attrs", "_start_wall", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: int | None,
        attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = _next_span_id()
        self.parent_id = parent_id
        self._attrs = attrs
        self._start_wall = 0
        self._t0 = 0

    def set(self, **attrs: object) -> "Span":
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self.span_id)
        self._start_wall = time.time_ns()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        dur = time.perf_counter_ns() - self._t0
        self._tracer._pop(self.span_id)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_ns=self._start_wall,
                dur_ns=dur,
                span_id=self.span_id,
                parent_id=self.parent_id,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFF_FFFF,
                attrs=tuple(sorted(self._attrs.items())),
            )
        )


class NullSpan:
    """The do-nothing span: one shared instance, zero allocation per call."""

    __slots__ = ()

    def set(self, **attrs: object) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The one shared no-op span — ``NullTracer.span()`` returns this very object,
#: which is how the tests prove the disabled path allocates nothing.
NULL_SPAN = NullSpan()


class NullTracer:
    """The do-nothing tracer installed while tracing is disabled."""

    __slots__ = ()
    enabled = False
    capacity = 0

    def span(self, name: str, **attrs: object) -> NullSpan:
        return NULL_SPAN

    def current_span_id(self) -> int | None:
        return None

    def spans(self) -> list[SpanRecord]:
        return []

    def drain(self) -> list[SpanRecord]:
        return []

    def adopt(self, records: Sequence[SpanRecord], parent_id: int | None = None) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The shared disabled-tracer singleton (``get_tracer()`` while off).
NULL_TRACER = NullTracer()


class Tracer:
    """A bounded ring of :class:`SpanRecord` plus the live span stack.

    The ring is a ``deque(maxlen=capacity)``: recording never blocks and never
    grows without bound — old spans fall off the front.  Parent links come
    from a thread-local stack, so concurrent threads trace independent
    subtrees without interleaving.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if int(capacity) < 1:
            raise ObservabilityError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque[SpanRecord] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- span construction --------------------------------------------- #

    def span(self, name: str, **attrs: object) -> Span:
        """A new span parented to the innermost open span of this thread."""
        return Span(self, name, self.current_span_id(), attrs)

    def current_span_id(self) -> int | None:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        stack.append(span_id)

    def _pop(self, span_id: int) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] == span_id:
            stack.pop()

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._ring.append(record)

    # -- ring access ---------------------------------------------------- #

    def spans(self) -> list[SpanRecord]:
        """The retained spans, oldest first (the ring is left intact)."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[SpanRecord]:
        """Take every retained span out of the ring."""
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
        return records

    def adopt(self, records: Sequence[SpanRecord], parent_id: int | None = None) -> None:
        """Stitch shipped worker records into this ring.

        Records with no parent (a worker's root task span) are re-parented
        under *parent_id* — the dispatching span — so the assembled trace is
        one tree even across process boundaries.
        """
        with self._lock:
            for rec in records:
                if rec.parent_id is None and parent_id is not None:
                    rec = SpanRecord(
                        name=rec.name,
                        start_ns=rec.start_ns,
                        dur_ns=rec.dur_ns,
                        span_id=rec.span_id,
                        parent_id=parent_id,
                        pid=rec.pid,
                        tid=rec.tid,
                        attrs=rec.attrs,
                    )
                self._ring.append(rec)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return f"Tracer(capacity={self.capacity}, spans={len(self)})"


# ---------------------------------------------------------------------- #
# active-tracer resolution
# ---------------------------------------------------------------------- #

_active: "Tracer | NullTracer" = NULL_TRACER
_sink: Path | None = None
_tls_override = threading.local()


def get_tracer() -> "Tracer | NullTracer":
    """The tracer for the current thread: a :func:`collecting` override if one
    is installed, else the process-global tracer (or :data:`NULL_TRACER`)."""
    override = getattr(_tls_override, "tracer", None)
    return _active if override is None else override


def is_enabled() -> bool:
    """Whether the process-global tracer is live."""
    return _active is not NULL_TRACER


def sink_path() -> Path | None:
    """Where :func:`flush_active` writes, or ``None`` (ring kept in memory)."""
    return _sink


def enable(capacity: int = DEFAULT_CAPACITY, sink: "str | Path | None" = None) -> Tracer:
    """Install a live process-global tracer (idempotent at same capacity).

    ``sink`` (optional) names the Perfetto JSON file :func:`flush_active`
    writes at teardown; without one, flushing leaves the ring in memory.
    """
    global _active, _sink
    if sink is not None:
        _sink = Path(sink)
    current = _active
    if isinstance(current, Tracer) and current.capacity == int(capacity):
        return current
    tracer = Tracer(capacity)
    _active = tracer
    return tracer


def disable(flush: bool = True) -> None:
    """Return to the no-op tracer; by default flush the ring to the sink first
    (never silently drop spans a sink was configured to keep)."""
    global _active
    if flush:
        flush_active()
    _active = NULL_TRACER


def flush_active() -> Path | None:
    """Export-close the active ring: write retained spans to the sink.

    With a sink configured and spans retained, writes the Perfetto JSON,
    drains the ring, and returns the path.  Without a sink (or without spans)
    this is a no-op returning ``None`` — the ring stays queryable in memory;
    nothing is dropped either way.
    """
    tracer = _active
    if not isinstance(tracer, Tracer) or _sink is None:
        return None
    records = tracer.drain()
    if not records:
        return None
    return write_trace_json(records, _sink)


@contextmanager
def collecting(capacity: int = 4096) -> Iterator[Tracer]:
    """Route this thread's spans into a private tracer (worker-side capture).

    Used by the executor's traced task wrapper: the worker records into a
    local ring, the records ship back with the result, and the parent stitches
    them under the dispatching span.  Thread-local, so pool threads sharing
    the process never race the global ring or each other.
    """
    collector = Tracer(capacity)
    previous = getattr(_tls_override, "tracer", None)
    _tls_override.tracer = collector
    try:
        yield collector
    finally:
        _tls_override.tracer = previous


def _env_setup() -> None:
    raw = os.environ.get(TRACE_ENV, "").strip()
    if raw.lower() in _FALSEY:
        return
    if raw.lower() in _TRUTHY:
        enable()
    else:
        enable(sink=raw)


_env_setup()


# ---------------------------------------------------------------------- #
# exports
# ---------------------------------------------------------------------- #


def to_trace_events(records: Sequence[SpanRecord]) -> list[dict[str, object]]:
    """Chrome/Perfetto ``trace_event`` complete events (``ph="X"``).

    Timestamps are microseconds relative to the earliest span start, so the
    viewer opens at t≈0 instead of the epoch.
    """
    if not records:
        return []
    base = min(r.start_ns for r in records)
    events: list[dict[str, object]] = []
    for r in records:
        events.append(
            {
                "name": r.name,
                "cat": "repro",
                "ph": "X",
                "ts": (r.start_ns - base) / 1000.0,
                "dur": r.dur_ns / 1000.0,
                "pid": r.pid,
                "tid": r.tid,
                "args": {str(k): v for k, v in r.attrs},
            }
        )
    return events


def write_trace_json(records: Sequence[SpanRecord], path: "str | Path") -> Path:
    """Write records as a Perfetto-loadable trace JSON document."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "traceEvents": to_trace_events(records),
        "displayTimeUnit": "ms",
    }
    out.write_text(json.dumps(document, sort_keys=True, default=str) + "\n")
    return out


def dump_spans(records: Sequence[SpanRecord], path: "str | Path") -> Path:
    """Write records as a raw span dump (lossless; ``python -m repro.obs
    convert`` turns one into Perfetto JSON)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "span_version": SPAN_FILE_VERSION,
        "spans": [r.to_dict() for r in records],
    }
    out.write_text(json.dumps(document, sort_keys=True, default=str) + "\n")
    return out


def load_spans(path: "str | Path") -> list[SpanRecord]:
    """Read a raw span dump back into :class:`SpanRecord` objects."""
    document = json.loads(Path(path).read_text())
    version = document.get("span_version")
    if version != SPAN_FILE_VERSION:
        raise ObservabilityError(
            f"unsupported span_version {version!r} in {path} "
            f"(this library reads {SPAN_FILE_VERSION})"
        )
    return [SpanRecord.from_dict(doc) for doc in document.get("spans", [])]


def flame_summary(records: Sequence[SpanRecord]) -> str:
    """A by-name aggregation of span cost, heaviest first.

    Columns: span name, call count, total ms, mean ms, and the share of the
    heaviest name's total — a poor man's flame graph for terminals.
    """
    if not records:
        return "(no spans recorded)"
    totals: dict[str, tuple[int, int]] = {}
    for r in records:
        count, total = totals.get(r.name, (0, 0))
        totals[r.name] = (count + 1, total + r.dur_ns)
    heaviest = max(total for _, total in totals.values()) or 1
    rows = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    name_width = max(len("span"), *(len(name) for name, _ in rows))
    lines = [
        f"{'span'.ljust(name_width)}  {'count':>7}  {'total ms':>10}  {'mean ms':>9}  {'share':>6}"
    ]
    for name, (count, total) in rows:
        lines.append(
            f"{name.ljust(name_width)}  {count:>7}  {total / 1e6:>10.3f}  "
            f"{total / count / 1e6:>9.3f}  {100.0 * total / heaviest:>5.1f}%"
        )
    return "\n".join(lines)
