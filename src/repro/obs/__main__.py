"""``python -m repro.obs`` — metrics snapshots and trace conversion.

Subcommands:

* ``metrics`` — print the process registry snapshot as JSON.  (A fresh CLI
  process has an empty registry; this is mostly useful from code that embeds
  the CLI, and as the canonical snapshot renderer.)
* ``convert SPANS.json [-o OUT.json]`` — turn a raw span dump (written by
  :func:`repro.obs.dump_spans`) into Chrome/Perfetto ``trace_event`` JSON;
  load the output at https://ui.perfetto.dev.
* ``flame SPANS.json`` — print the text flame summary of a raw span dump.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ObservabilityError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


def _cmd_metrics(args: argparse.Namespace) -> int:
    print(json.dumps(_metrics.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    records = _trace.load_spans(args.spans)
    out = Path(args.output) if args.output else Path(args.spans).with_suffix(".perfetto.json")
    _trace.write_trace_json(records, out)
    print(f"wrote {len(records)} spans to {out}")
    return 0


def _cmd_flame(args: argparse.Namespace) -> int:
    records = _trace.load_spans(args.spans)
    print(_trace.flame_summary(records))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Metrics snapshots and trace-ring conversion for repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_metrics = sub.add_parser("metrics", help="print the registry snapshot as JSON")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_convert = sub.add_parser(
        "convert", help="convert a raw span dump to Perfetto trace_event JSON"
    )
    p_convert.add_argument("spans", help="raw span dump written by repro.obs.dump_spans")
    p_convert.add_argument("-o", "--output", default=None, help="output path")
    p_convert.set_defaults(func=_cmd_convert)

    p_flame = sub.add_parser("flame", help="print the text flame summary of a span dump")
    p_flame.add_argument("spans", help="raw span dump written by repro.obs.dump_spans")
    p_flame.set_defaults(func=_cmd_flame)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream pager/head closed the pipe mid-print; exit quietly
        # (devnull swap stops the interpreter re-raising at shutdown)
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
